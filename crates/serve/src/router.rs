//! Sharded multi-engine serving: a [`ShardRouter`] fleet surface over
//! N [`ServeEngine`] shards.
//!
//! The paper's economy — pay Fig 5 preprocessing once, reuse the plan
//! forever — only survives fleet scale if a structure's plan lives on
//! exactly one shard. The router enforces that with **rendezvous
//! (highest-random-weight) hashing** on the request's
//! [`MatrixFingerprint`]: every shard is scored against the
//! fingerprint's structural hash, and the highest score owns the key.
//! Two properties fall out of scoring shards *individually* instead of
//! slicing a modulus:
//!
//! * **Determinism** — the same fingerprint always lands on the same
//!   shard, so each structure is prepared (and cached) exactly once
//!   fleet-wide.
//! * **Minimal movement** — removing a shard only relocates the keys
//!   that shard owned (~1/N of them); every other key's owner is
//!   untouched, because its score order never consulted the removed
//!   shard. `tests/router.rs` pins both properties.
//!
//! Underneath all shards sits one shared read-through [`PlanStore`]
//! tier. Shards start with [`ServeConfig::warm_start`] disabled —
//! eager warm-loading would materialise every stored plan into every
//! shard's cache, which is precisely the duplication the router
//! exists to prevent. Instead the owning shard pulls its plans from
//! the store on demand, and **failover** rides the same mechanism: when
//! a shard's [`health().ready()`](HealthSnapshot::ready) goes false,
//! [`ShardRouter::submit`] walks to the next rendezvous candidate,
//! which warm-loads the plan from the store (`serve.store.hit`,
//! [`ServePath::CachedPlan`](crate::ServePath), zero preprocessing)
//! instead of re-preparing.
//!
//! Fleet observability: every shard tees its `serve.*` counters into
//! the router's collector, so [`ShardRouter::manifest`] carries exact
//! fleet-wide totals; [`ShardRouter::stats`] / [`ShardRouter::health`]
//! return [`RouterStats`] / [`RouterHealth`] — the merged view plus the
//! unmerged per-shard snapshots.

use crate::cache::CacheStats;
use crate::engine::{HealthSnapshot, Request, Response, ServeConfig, ServeEngine, ServeStats};
use crate::error::ServeError;
use crate::fingerprint::MatrixFingerprint;
use crate::store::PlanStore;
use crate::Ticket;
use spmm_faults::{splitmix64, FaultPoint};
use spmm_sparse::{Scalar, SparseError};
use spmm_telemetry::{Collector, FanoutRecorder, Recorder, RunManifest, TelemetryHandle};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fault point at the top of [`ShardRouter::submit`], before any shard
/// is consulted: an `Error` action fails the request at the routing
/// tier (reported like a kernel execution error), a `Panic` action
/// exercises the caller's panic path. Registered as
/// `serve.router.route` for `FaultPlan` specs.
pub static FAULT_ROUTER_ROUTE: FaultPoint = FaultPoint::new("serve.router.route");

/// The rendezvous weight of `shard` for `key`: a splitmix64 mix of the
/// key with the (pre-whitened) shard identity. Deterministic, uniform,
/// and — crucially — computed per shard, so a shard leaving the fleet
/// cannot change the relative order of the shards that remain.
fn rendezvous_score(key: u64, shard: u64) -> u64 {
    splitmix64(key ^ splitmix64(shard.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// Ranks `shard_ids` for `key` by descending rendezvous score (ties
/// break toward the smaller id). The first element is the key's owner;
/// the rest are its failover order.
pub fn rendezvous_order(key: u64, shard_ids: &[u64]) -> Vec<u64> {
    let mut order: Vec<u64> = shard_ids.to_vec();
    order.sort_by_key(|&id| (Reverse(rendezvous_score(key, id)), id));
    order
}

/// The rendezvous owner of `key` among `shard_ids`, or `None` for an
/// empty fleet.
pub fn rendezvous_pick(key: u64, shard_ids: &[u64]) -> Option<u64> {
    shard_ids
        .iter()
        .copied()
        .min_by_key(|&id| (Reverse(rendezvous_score(key, id)), id))
}

/// Construction options for [`ShardRouter`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RouterConfig {
    /// Fleet size: how many [`ServeEngine`] shards to start. Default 2.
    pub shards: usize,
    /// The per-shard configuration template. The router overrides its
    /// `telemetry` (each shard tees into the fleet collector), its
    /// `plan_store` (all shards share the router's store tier when one
    /// is attached) and its `warm_start` (always `false` — see the
    /// module docs).
    pub shard: ServeConfig,
    /// The shared read-through plan-store tier under all shards.
    /// Default: none (shards still deduplicate in their own caches,
    /// but failover then re-prepares instead of warm-loading).
    pub plan_store: Option<Arc<PlanStore>>,
    /// Optional external telemetry sink for fleet-wide `serve.*` and
    /// `serve.router.*` events; the router always keeps an internal
    /// collector for [`ShardRouter::manifest`].
    pub telemetry: TelemetryHandle,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 2,
            shard: ServeConfig::default(),
            plan_store: None,
            telemetry: TelemetryHandle::default(),
        }
    }
}

impl RouterConfig {
    /// Starts a builder initialised with the defaults.
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder::default()
    }
}

/// Builder for [`RouterConfig`].
#[derive(Debug, Clone, Default)]
pub struct RouterConfigBuilder {
    config: RouterConfig,
}

impl RouterConfigBuilder {
    /// Sets the fleet size. Must be at least 1; zero is rejected by
    /// [`build`](RouterConfigBuilder::build).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the per-shard configuration template.
    pub fn shard(mut self, shard: ServeConfig) -> Self {
        self.config.shard = shard;
        self
    }

    /// Attaches the shared plan-store tier.
    pub fn plan_store(mut self, store: Arc<PlanStore>) -> Self {
        self.config.plan_store = Some(store);
        self
    }

    /// Sets the external telemetry sink.
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Validates and finishes the configuration.
    ///
    /// # Errors
    /// [`ServeError::InvalidConfig`] when `shards` is zero — a router
    /// with no shards could never place a request.
    pub fn build(self) -> Result<RouterConfig, ServeError> {
        if self.config.shards == 0 {
            return Err(ServeError::InvalidConfig {
                field: "shards",
                value: 0,
                minimum: 1,
            });
        }
        Ok(self.config)
    }
}

/// Fleet-level counter snapshot (see [`ShardRouter::stats`]).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RouterStats {
    /// Requests placed on a shard (their rendezvous owner or, on
    /// failover, a later candidate).
    pub routed: u64,
    /// Requests placed on a shard other than their rendezvous owner
    /// because the owner (or an earlier candidate) was not ready.
    pub failovers: u64,
    /// Requests that could not be placed anywhere
    /// ([`ServeError::NoReadyShard`]).
    pub no_ready_shard: u64,
    /// Shards taken down through [`ShardRouter::kill`].
    pub killed: u64,
    /// The component-wise sum of every shard's [`ServeStats`].
    pub fleet: ServeStats,
    /// The unmerged per-shard snapshots, indexed by shard.
    pub per_shard: Vec<ServeStats>,
}

impl RouterStats {
    /// Requests placed on a shard.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Requests placed away from their rendezvous owner.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Requests that could not be placed anywhere.
    pub fn no_ready_shard(&self) -> u64 {
        self.no_ready_shard
    }

    /// Shards taken down through [`ShardRouter::kill`].
    pub fn killed(&self) -> u64 {
        self.killed
    }

    /// The component-wise sum of every shard's [`ServeStats`].
    pub fn fleet(&self) -> &ServeStats {
        &self.fleet
    }

    /// The unmerged per-shard snapshots, indexed by shard.
    pub fn per_shard(&self) -> &[ServeStats] {
        &self.per_shard
    }
}

/// Fleet-level health view (see [`ShardRouter::health`]): the merged
/// snapshot for dashboards plus the unmerged per-shard snapshots the
/// routing decisions are actually made from.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RouterHealth {
    /// Every shard's [`HealthSnapshot`] merged with
    /// [`HealthSnapshot::merge`] (gauges and counters sum).
    pub fleet: HealthSnapshot,
    /// The unmerged per-shard snapshots, indexed by shard.
    pub per_shard: Vec<HealthSnapshot>,
}

impl RouterHealth {
    /// Fleet readiness: at least one shard can take traffic.
    pub fn ready(&self) -> bool {
        self.per_shard.iter().any(HealthSnapshot::ready)
    }

    /// How many shards can currently take traffic.
    pub fn ready_shards(&self) -> usize {
        self.per_shard.iter().filter(|h| h.ready()).count()
    }

    /// The merged fleet snapshot.
    pub fn fleet(&self) -> &HealthSnapshot {
        &self.fleet
    }

    /// The unmerged per-shard snapshots, indexed by shard.
    pub fn per_shard(&self) -> &[HealthSnapshot] {
        &self.per_shard
    }
}

/// A fleet of [`ServeEngine`] shards behind rendezvous hashing on the
/// request's [`MatrixFingerprint`] (see the module docs).
///
/// ```
/// use spmm_data::generators;
/// use spmm_serve::{Request, RouterConfig, ServePath, ShardRouter};
///
/// let router = ShardRouter::<f64>::start(RouterConfig::default()).unwrap();
/// let m = generators::banded::<f64>(256, 8, 4, 7);
/// let x = generators::random_dense::<f64>(m.ncols(), 16, 3);
/// // the owning shard pays preprocessing once...
/// let cold = router.execute(Request::spmm(m.clone(), x.clone())).unwrap();
/// assert_eq!(cold.path, ServePath::FreshPlan);
/// // ...and the same structure always routes back to it
/// let warm = router.execute(Request::spmm(m, x)).unwrap();
/// assert_eq!(warm.path, ServePath::CachedPlan);
/// assert!(warm.preprocess.is_zero());
/// ```
pub struct ShardRouter<T: Scalar> {
    shards: Vec<ServeEngine<T>>,
    ids: Vec<u64>,
    telemetry: TelemetryHandle,
    collector: Arc<Collector>,
    routed: AtomicU64,
    failovers: AtomicU64,
    no_ready_shard: AtomicU64,
    killed: AtomicU64,
}

impl<T: Scalar> std::fmt::Debug for ShardRouter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards.len())
            .field("routed", &self.routed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<T: Scalar> ShardRouter<T> {
    /// Starts the fleet: N shards from the template, all teeing their
    /// telemetry into the router's collector and sharing the router's
    /// plan-store tier, none warm-starting eagerly.
    ///
    /// # Errors
    /// [`ServeError::InvalidConfig`] when the template's `workers` or
    /// `queue_capacity` is zero (the same validation as
    /// [`ServeConfigBuilder::build`](crate::engine::ServeConfigBuilder::build),
    /// re-checked here because the template travels inside
    /// [`RouterConfig`] by value).
    pub fn start(config: RouterConfig) -> Result<Self, ServeError> {
        // a template mutated after its builder ran must not smuggle a
        // deadlocking value past validation
        if config.shard.workers == 0 {
            return Err(ServeError::InvalidConfig {
                field: "workers",
                value: 0,
                minimum: 1,
            });
        }
        if config.shard.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                field: "queue_capacity",
                value: 0,
                minimum: 1,
            });
        }
        if config.shards == 0 {
            return Err(ServeError::InvalidConfig {
                field: "shards",
                value: 0,
                minimum: 1,
            });
        }
        let collector = Arc::new(Collector::new());
        let telemetry = if config.telemetry.is_enabled() {
            TelemetryHandle::new(Arc::new(FanoutRecorder::new(vec![
                collector.clone() as Arc<dyn Recorder>,
                config.telemetry.recorder(),
            ])))
        } else {
            TelemetryHandle::new(collector.clone())
        };
        let ids: Vec<u64> = (0..config.shards as u64).collect();
        let shards = ids
            .iter()
            .map(|_| {
                let mut shard_config = config.shard.clone();
                shard_config.telemetry = telemetry.clone();
                if let Some(store) = &config.plan_store {
                    shard_config.plan_store = Some(Arc::clone(store));
                }
                // eager warm-loading on every shard would duplicate
                // every stored plan fleet-wide; the owning shard pulls
                // its plans on demand through read-through instead
                shard_config.warm_start = false;
                ServeEngine::start(shard_config)
            })
            .collect::<Vec<_>>();
        // routing reads `health().ready()`, which is false until a
        // shard's workers have registered; without this rendezvous the
        // first requests would spuriously "fail over" past owners that
        // are merely still spawning
        for shard in &shards {
            while shard.health().workers_alive() == 0 {
                std::thread::yield_now();
            }
        }
        Ok(ShardRouter {
            shards,
            ids,
            telemetry,
            collector,
            routed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            no_ready_shard: AtomicU64::new(0),
            killed: AtomicU64::new(0),
        })
    }

    /// Fleet size (including killed shards).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to one shard (e.g. for per-shard assertions).
    ///
    /// # Panics
    /// When `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &ServeEngine<T> {
        &self.shards[shard]
    }

    /// The fingerprint's rendezvous owner — where its traffic lands
    /// while the fleet is healthy.
    pub fn owner(&self, fp: &MatrixFingerprint) -> usize {
        // the id list is never empty: `start` rejects a zero-shard fleet
        rendezvous_pick(fp.hash(), &self.ids).unwrap_or_default() as usize
    }

    /// The fingerprint's full failover order: the owner first, then
    /// each successive rendezvous candidate.
    pub fn candidates(&self, fp: &MatrixFingerprint) -> Vec<usize> {
        rendezvous_order(fp.hash(), &self.ids)
            .into_iter()
            .map(|id| id as usize)
            .collect()
    }

    /// Where a request for `fp` would be placed *right now*: the first
    /// rendezvous candidate whose shard is ready, or `None` when no
    /// shard is.
    pub fn route(&self, fp: &MatrixFingerprint) -> Option<usize> {
        self.candidates(fp)
            .into_iter()
            .find(|&idx| self.shards[idx].health().ready())
    }

    /// Routes and enqueues a request, returning the shard's [`Ticket`].
    ///
    /// Placement walks the fingerprint's rendezvous order and takes the
    /// first *ready* shard; passing over a not-ready candidate counts
    /// as `serve.router.failover`. A ready-but-full shard is **not**
    /// failed over: [`ServeError::Overloaded`] is backpressure the
    /// client must handle, and spilling it to a non-owner would
    /// duplicate the structure's plan — exactly what the router exists
    /// to prevent.
    ///
    /// # Errors
    /// [`ServeError::NoReadyShard`] when every shard is shut down or
    /// has no live workers; [`ServeError::Overloaded`] from the chosen
    /// shard's admission control; [`ServeError::Execute`] when the
    /// `serve.router.route` fault point fires.
    pub fn submit(&self, request: Request<T>) -> Result<Ticket<T>, ServeError> {
        FAULT_ROUTER_ROUTE
            .fire()
            .map_err(|e| ServeError::Execute(SparseError::InvalidStructure(e.to_string())))?;
        let fp = MatrixFingerprint::of(request.matrix());
        for (rank, idx) in self.candidates(&fp).into_iter().enumerate() {
            if !self.shards[idx].health().ready() {
                continue;
            }
            self.routed.fetch_add(1, Ordering::Relaxed);
            self.telemetry.counter("serve.router.routed", 1);
            if rank > 0 {
                self.failovers.fetch_add(1, Ordering::Relaxed);
                self.telemetry.counter("serve.router.failover", 1);
            }
            return self.shards[idx].submit(request);
        }
        self.no_ready_shard.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.router.no_ready_shard", 1);
        Err(ServeError::NoReadyShard {
            shards: self.shards.len(),
        })
    }

    /// Routes, submits and waits: the synchronous convenience path.
    ///
    /// # Errors
    /// As [`ShardRouter::submit`], plus any serving error the shard
    /// reports for the request itself.
    pub fn execute(&self, request: Request<T>) -> Result<Response<T>, ServeError> {
        self.submit(request)?.wait()
    }

    /// Refreshes the cached plan for `fp` in place on every shard that
    /// holds one (after a failover the plan may be resident on both the
    /// owner and its backup). Returns `Ok(true)` when at least one
    /// shard refreshed.
    ///
    /// # Errors
    /// The first value-refresh error any shard reports.
    pub fn update_values(&self, fp: &MatrixFingerprint, values: &[T]) -> Result<bool, ServeError> {
        let mut refreshed = false;
        for shard in &self.shards {
            refreshed |= shard.update_values(fp, values)?;
        }
        Ok(refreshed)
    }

    /// Applies a structural delta to the plan for `fp` on exactly one
    /// shard — the first of `fp`'s rendezvous candidates that actually
    /// holds the plan (its owner while the fleet is healthy; after a
    /// failover, the backup that prepared it). Walking past shards that
    /// do not hold the plan keeps the fleet invariant the router exists
    /// for: a structure's plan — old epoch or new — lives on one shard,
    /// never N.
    ///
    /// The returned fingerprint is the *new* structure's key, and its
    /// traffic re-routes through rendezvous independently: when the new
    /// fingerprint's owner is a different shard, that shard warm-loads
    /// the delta'd plan from the shared store tier on first contact
    /// ([`PlanStore::save_delta`] persisted it before the swap
    /// committed). Without a store tier, the new owner re-prepares from
    /// scratch — correct, just not incremental.
    ///
    /// Returns `Ok(None)` when no shard holds a plan for `fp`.
    ///
    /// # Errors
    /// The delta error the holding shard reports; the old plan on that
    /// shard remains fully serveable (see
    /// [`PlanCache::apply_delta`](crate::cache::PlanCache::apply_delta)).
    pub fn apply_delta(
        &self,
        fp: &MatrixFingerprint,
        added: &[(usize, usize, T)],
        removed: &[(usize, usize)],
    ) -> Result<Option<MatrixFingerprint>, ServeError> {
        for idx in self.candidates(fp) {
            match self.shards[idx].apply_delta(fp, added, removed)? {
                Some(new_fp) => {
                    self.telemetry.counter("serve.router.delta", 1);
                    return Ok(Some(new_fp));
                }
                None => continue,
            }
        }
        Ok(None)
    }

    /// Takes one shard down (stops its admission, drains what it
    /// already accepted) — the fault-injection path the chaos bench
    /// uses to prove graceful degradation. Subsequent traffic for the
    /// shard's keys fails over to their next rendezvous candidate.
    ///
    /// # Panics
    /// When `shard` is out of range.
    pub fn kill(&self, shard: usize) {
        self.shards[shard].shutdown();
        self.killed.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.router.shard_killed", 1);
    }

    /// Snapshots the routing counters plus every shard's serving
    /// counters (merged and unmerged).
    pub fn stats(&self) -> RouterStats {
        let per_shard: Vec<ServeStats> = self.shards.iter().map(ServeEngine::stats).collect();
        let fleet = per_shard
            .iter()
            .fold(ServeStats::default(), |acc, s| acc.merge(s));
        RouterStats {
            routed: self.routed.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            no_ready_shard: self.no_ready_shard.load(Ordering::Relaxed),
            killed: self.killed.load(Ordering::Relaxed),
            fleet,
            per_shard,
        }
    }

    /// Snapshots fleet health: the merged view plus the per-shard
    /// snapshots routing decisions are made from.
    pub fn health(&self) -> RouterHealth {
        let per_shard: Vec<HealthSnapshot> = self.shards.iter().map(ServeEngine::health).collect();
        let fleet = per_shard
            .iter()
            .skip(1)
            .fold(per_shard[0].clone(), |acc, h| acc.merge(h));
        RouterHealth { fleet, per_shard }
    }

    /// The component-wise sum of every shard's plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shards
            .iter()
            .map(ServeEngine::cache_stats)
            .fold(CacheStats::default(), |acc, s| acc.merge(&s))
    }

    /// The fleet's telemetry handle: every shard's `serve.*` events and
    /// the router's `serve.router.*` events land here.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Snapshots the fleet collector as a run manifest: exact
    /// fleet-wide `serve.*`, `serve.cache.*`, `serve.store.*` and
    /// `serve.router.*` totals.
    pub fn manifest(&self) -> RunManifest {
        self.collector.manifest()
    }

    /// Stops every shard's admission control; already-admitted jobs are
    /// still drained and answered. Called automatically on drop (each
    /// shard shuts down as it is dropped).
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_data::generators;
    use std::time::Duration;

    fn small_router(shards: usize) -> ShardRouter<f64> {
        ShardRouter::start(
            RouterConfig::builder()
                .shards(shards)
                .shard(
                    ServeConfig::builder()
                        .workers(1)
                        .queue_capacity(32)
                        .build()
                        .unwrap(),
                )
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn builder_rejects_a_zero_shard_fleet() {
        let err = RouterConfig::builder().shards(0).build().unwrap_err();
        assert_eq!(
            err,
            ServeError::InvalidConfig {
                field: "shards",
                value: 0,
                minimum: 1,
            }
        );
        // a template mutated behind the builder's back is caught at start
        let mut config = RouterConfig::default();
        config.shard.workers = 0;
        let err = ShardRouter::<f64>::start(config).unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidConfig {
                field: "workers",
                ..
            }
        ));
    }

    #[test]
    fn rendezvous_order_is_a_permutation_with_a_stable_owner() {
        let ids: Vec<u64> = (0..8).collect();
        for key in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let order = rendezvous_order(key, &ids);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, ids, "order must be a permutation of the ids");
            assert_eq!(rendezvous_pick(key, &ids), Some(order[0]));
            assert_eq!(order, rendezvous_order(key, &ids), "deterministic");
        }
        assert_eq!(rendezvous_pick(7, &[]), None);
    }

    #[test]
    fn same_fingerprint_routes_to_the_same_shard_and_caches_once() {
        let router = small_router(4);
        let m = generators::uniform_random::<f64>(128, 128, 6, 3);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 5);
        let fp = MatrixFingerprint::of(&m);
        let owner = router.owner(&fp);

        let cold = router.execute(Request::spmm(m.clone(), x.clone())).unwrap();
        assert_eq!(cold.path, crate::ServePath::FreshPlan);
        let warm = router.execute(Request::spmm(m, x)).unwrap();
        assert_eq!(warm.path, crate::ServePath::CachedPlan);
        assert_eq!(warm.preprocess, Duration::ZERO);

        // only the owner served anything; the plan exists exactly once
        for idx in 0..router.shards() {
            let expected = if idx == owner { 2 } else { 0 };
            assert_eq!(router.shard(idx).stats().completed(), expected);
        }
        let cache = router.cache_stats();
        assert_eq!(cache.inserts(), 1, "one prepare fleet-wide");
        assert_eq!(cache.hits(), 1);
        let stats = router.stats();
        assert_eq!(stats.routed(), 2);
        assert_eq!(stats.failovers(), 0);
        assert_eq!(stats.fleet().completed(), 2);
        assert_eq!(router.manifest().counters["serve.router.routed"], 2);
    }

    #[test]
    fn killed_shard_fails_over_to_the_next_candidate() {
        let router = small_router(3);
        let m = generators::uniform_random::<f64>(96, 96, 5, 11);
        let x = generators::random_dense::<f64>(m.ncols(), 4, 2);
        let fp = MatrixFingerprint::of(&m);
        let candidates = router.candidates(&fp);

        router.kill(candidates[0]);
        assert!(!router.health().per_shard()[candidates[0]].ready());
        assert_eq!(router.route(&fp), Some(candidates[1]));

        let resp = router.execute(Request::spmm(m, x)).unwrap();
        assert_eq!(resp.path, crate::ServePath::FreshPlan);
        let stats = router.stats();
        assert_eq!(stats.failovers(), 1);
        assert_eq!(stats.per_shard()[candidates[1]].completed(), 1);
        let health = router.health();
        assert!(health.ready());
        assert_eq!(health.ready_shards(), 2);
        assert_eq!(router.manifest().counters["serve.router.shard_killed"], 1);
    }

    #[test]
    fn a_fully_killed_fleet_reports_no_ready_shard() {
        let router = small_router(2);
        router.kill(0);
        router.kill(1);
        let m = generators::uniform_random::<f64>(64, 64, 4, 9);
        let x = generators::random_dense::<f64>(m.ncols(), 4, 1);
        let err = router.execute(Request::spmm(m, x)).unwrap_err();
        assert_eq!(err, ServeError::NoReadyShard { shards: 2 });
        assert!(!router.health().ready());
        assert_eq!(router.stats().no_ready_shard(), 1);
    }

    #[test]
    fn update_values_reaches_the_owning_shard() {
        let router = small_router(3);
        let m = generators::uniform_random::<f64>(96, 96, 5, 77);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 1);
        let fp = MatrixFingerprint::of(&m);
        router.execute(Request::spmm(m.clone(), x.clone())).unwrap();

        let new_values: Vec<f64> = (0..m.nnz()).map(|i| (i % 7) as f64 - 3.0).collect();
        assert!(router.update_values(&fp, &new_values).unwrap());

        let mut m2 = m.clone();
        m2.values_mut().copy_from_slice(&new_values);
        let expected = spmm_kernels::spmm::spmm_rowwise_seq(&m2, &x).unwrap();
        let resp = router.execute(Request::spmm(m2, x)).unwrap();
        assert_eq!(resp.path, crate::ServePath::CachedPlan);
        let got = resp.output.into_dense().unwrap();
        assert!(expected.max_abs_diff(&got) < 1e-10);
    }

    #[test]
    fn structural_delta_lands_on_one_shard_and_both_epochs_serve() {
        let _quiet = spmm_faults::quiesce();
        let router = small_router(3);
        let m = generators::uniform_random::<f64>(96, 96, 5, 77);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 1);
        let fp = MatrixFingerprint::of(&m);
        router.execute(Request::spmm(m.clone(), x.clone())).unwrap();

        let existing = (0usize, m.row_cols(0)[0] as usize);
        let absent = (0..m.ncols() as u32)
            .find(|c| m.row_cols(1).binary_search(c).is_err())
            .unwrap() as usize;
        let added = [(1usize, absent, 2.5f64)];
        let removed = [existing];
        let new_fp = router.apply_delta(&fp, &added, &removed).unwrap().unwrap();
        assert_ne!(new_fp, fp);

        // The delta landed on exactly one shard — the fleet never holds
        // duplicate residents for a structure.
        let holders = router
            .shards
            .iter()
            .filter(|s| s.cache().try_get(&new_fp).is_some())
            .count();
        assert_eq!(holders, 1);

        // Both epochs keep serving exact answers through the router.
        let m_new = m.apply_structural_delta(&added, &removed).unwrap();
        for mat in [m.clone(), m_new.clone()] {
            let expected = spmm_kernels::spmm::spmm_rowwise_seq(&mat, &x).unwrap();
            let got = router
                .execute(Request::spmm(mat, x.clone()))
                .unwrap()
                .output
                .into_dense()
                .unwrap();
            assert!(expected.max_abs_diff(&got) < 1e-10);
        }

        // A fingerprint no shard holds is a routed no-op.
        let stranger = generators::uniform_random::<f64>(32, 32, 3, 5);
        let stranger_fp = MatrixFingerprint::of(&stranger);
        assert!(router
            .apply_delta(&stranger_fp, &[], &[(0, 0)])
            .unwrap()
            .is_none());
    }
}
