//! The serving layer's structured error hierarchy.

use spmm_sparse::SparseError;
use std::fmt;
use std::time::Duration;

/// Everything that can go wrong between [`submit`] and a response.
///
/// Unlike `SparseError` — which describes *data* problems — these
/// variants describe *serving* outcomes: load shedding, missed
/// deadlines and broken cache entries are expected operating states a
/// client must be able to branch on, not strings to parse.
///
/// [`submit`]: crate::ServeEngine::submit
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control rejected the request: the bounded queue was
    /// full, or the engine is shutting down. Back off and retry — the
    /// request was never enqueued.
    Overloaded {
        /// Jobs already waiting when the request was rejected.
        queue_depth: usize,
        /// The configured queue bound.
        queue_capacity: usize,
    },
    /// The per-request deadline elapsed while the request was still
    /// queued; it was abandoned before any work started.
    DeadlineExceeded {
        /// How long the request had waited when it was abandoned.
        waited: Duration,
    },
    /// Preparing the plan failed — the matrix violates the CSR
    /// invariants or is otherwise unusable.
    Prepare(SparseError),
    /// Executing a kernel failed — operand shapes don't match the
    /// request's matrix.
    Execute(SparseError),
    /// A prepare for this fingerprint panicked. The cached slot stays
    /// poisoned — every lookup reports this deterministically — until
    /// the entry is evicted or removed with
    /// [`PlanCache::remove`](crate::PlanCache::remove).
    PoisonedPlan,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                queue_capacity,
            } => write!(
                f,
                "overloaded: queue at {queue_depth}/{queue_capacity}, request rejected"
            ),
            ServeError::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after waiting {waited:?}")
            }
            ServeError::Prepare(e) => write!(f, "plan preparation failed: {e}"),
            ServeError::Execute(e) => write!(f, "kernel execution failed: {e}"),
            ServeError::PoisonedPlan => {
                write!(f, "cached plan is poisoned (a prepare panicked)")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Prepare(e) | ServeError::Execute(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = ServeError::Overloaded {
            queue_depth: 64,
            queue_capacity: 64,
        };
        assert!(e.to_string().contains("64/64"), "{e}");
        let e = ServeError::DeadlineExceeded {
            waited: Duration::from_millis(7),
        };
        assert!(e.to_string().contains("deadline"), "{e}");
        assert!(ServeError::PoisonedPlan.to_string().contains("poisoned"));
    }

    #[test]
    fn source_chains_to_sparse_error() {
        use std::error::Error;
        let inner = SparseError::InvalidStructure("bad rowptr".into());
        let e = ServeError::Prepare(inner.clone());
        assert_eq!(e.source().unwrap().to_string(), inner.to_string());
        assert!(ServeError::PoisonedPlan.source().is_none());
    }
}
