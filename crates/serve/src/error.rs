//! The serving layer's structured error hierarchy.

use spmm_sparse::SparseError;
use std::fmt;
use std::time::Duration;

/// Everything that can go wrong between [`submit`] and a response.
///
/// Unlike `SparseError` — which describes *data* problems — these
/// variants describe *serving* outcomes: load shedding, missed
/// deadlines and broken cache entries are expected operating states a
/// client must be able to branch on, not strings to parse.
///
/// [`submit`]: crate::ServeEngine::submit
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control rejected the request: the bounded queue was
    /// full, or the engine is shutting down. Back off and retry — the
    /// request was never enqueued.
    Overloaded {
        /// Jobs already waiting when the request was rejected.
        queue_depth: usize,
        /// The configured queue bound.
        queue_capacity: usize,
    },
    /// The per-request deadline elapsed while the request was still
    /// queued; it was abandoned before any work started.
    DeadlineExceeded {
        /// How long the request had waited when it was abandoned.
        waited: Duration,
    },
    /// Preparing the plan failed — the matrix violates the CSR
    /// invariants or is otherwise unusable.
    Prepare(SparseError),
    /// Executing a kernel failed — operand shapes don't match the
    /// request's matrix.
    Execute(SparseError),
    /// A prepare for this fingerprint panicked. The cached slot stays
    /// poisoned — every lookup reports this deterministically — until
    /// the entry is evicted, removed with
    /// [`PlanCache::remove`](crate::PlanCache::remove), or swept by
    /// [`PlanCache::clear_poisoned`](crate::PlanCache::clear_poisoned).
    /// The serving path quarantines such fingerprints and degrades to
    /// the row-wise fallback instead of surfacing this.
    PoisonedPlan,
    /// The worker thread processing this request panicked past its
    /// `catch_unwind` boundary (or died before responding). The request
    /// may or may not have executed; the engine keeps serving on the
    /// remaining workers.
    WorkerPanicked,
    /// The fingerprint's circuit breaker is open: the last
    /// [`failures`](ServeError::BreakerOpen::failures) consecutive
    /// prepares failed, so prepare attempts are suppressed until the
    /// cooldown elapses (then one half-open probe is admitted).
    BreakerOpen {
        /// Consecutive prepare failures recorded for the fingerprint.
        failures: u32,
        /// Time remaining until the half-open probe is admitted.
        retry_in: Duration,
    },
    /// The fingerprint's last prepare failed and its exponential
    /// backoff window has not elapsed; the attempt was suppressed
    /// without running the pipeline.
    RetryBackoff {
        /// Consecutive prepare failures recorded for the fingerprint.
        failures: u32,
        /// Time remaining in the current backoff window.
        retry_in: Duration,
    },
    /// A configuration value was rejected at build time — starting an
    /// engine with it would deadlock (for example a worker pool of
    /// zero threads can never drain the queue).
    InvalidConfig {
        /// The offending configuration field.
        field: &'static str,
        /// The rejected value.
        value: usize,
        /// The smallest accepted value.
        minimum: usize,
    },
    /// Every shard in the router's fleet reported not-ready (shut down
    /// or without live workers), so the request could not be placed
    /// anywhere.
    NoReadyShard {
        /// The fleet size that was consulted.
        shards: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                queue_capacity,
            } => write!(
                f,
                "overloaded: queue at {queue_depth}/{queue_capacity}, request rejected"
            ),
            ServeError::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after waiting {waited:?}")
            }
            ServeError::Prepare(e) => write!(f, "plan preparation failed: {e}"),
            ServeError::Execute(e) => write!(f, "kernel execution failed: {e}"),
            ServeError::PoisonedPlan => {
                write!(f, "cached plan is poisoned (a prepare panicked)")
            }
            ServeError::WorkerPanicked => {
                write!(f, "worker panicked while processing the request")
            }
            ServeError::BreakerOpen { failures, retry_in } => write!(
                f,
                "circuit breaker open after {failures} consecutive prepare \
                 failures; half-open probe in {retry_in:?}"
            ),
            ServeError::RetryBackoff { failures, retry_in } => write!(
                f,
                "prepare retry suppressed ({failures} consecutive failures); \
                 backoff expires in {retry_in:?}"
            ),
            ServeError::InvalidConfig {
                field,
                value,
                minimum,
            } => write!(
                f,
                "invalid configuration: {field} = {value} (must be at least \
                 {minimum}) — starting with it would deadlock"
            ),
            ServeError::NoReadyShard { shards } => write!(
                f,
                "no ready shard: all {shards} shards are shut down or have \
                 no live workers; the request was not placed"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Prepare(e) | ServeError::Execute(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = ServeError::Overloaded {
            queue_depth: 64,
            queue_capacity: 64,
        };
        assert!(e.to_string().contains("64/64"), "{e}");
        let e = ServeError::DeadlineExceeded {
            waited: Duration::from_millis(7),
        };
        assert!(e.to_string().contains("deadline"), "{e}");
        assert!(ServeError::PoisonedPlan.to_string().contains("poisoned"));
        assert!(ServeError::WorkerPanicked.to_string().contains("panicked"));
        let e = ServeError::BreakerOpen {
            failures: 3,
            retry_in: Duration::from_millis(250),
        };
        assert!(e.to_string().contains("breaker open"), "{e}");
        assert!(e.to_string().contains('3'), "{e}");
        let e = ServeError::RetryBackoff {
            failures: 2,
            retry_in: Duration::from_millis(20),
        };
        assert!(e.to_string().contains("backoff"), "{e}");
        assert!(e.to_string().contains('2'), "{e}");
        let e = ServeError::InvalidConfig {
            field: "workers",
            value: 0,
            minimum: 1,
        };
        assert!(e.to_string().contains("workers = 0"), "{e}");
        assert!(e.to_string().contains("at least 1"), "{e}");
        let e = ServeError::NoReadyShard { shards: 4 };
        assert!(e.to_string().contains("4 shards"), "{e}");
    }

    #[test]
    fn source_chains_to_sparse_error() {
        use std::error::Error;
        let inner = SparseError::InvalidStructure("bad rowptr".into());
        for e in [
            ServeError::Prepare(inner.clone()),
            ServeError::Execute(inner.clone()),
        ] {
            assert_eq!(e.source().unwrap().to_string(), inner.to_string());
        }
        for e in [
            ServeError::PoisonedPlan,
            ServeError::WorkerPanicked,
            ServeError::BreakerOpen {
                failures: 1,
                retry_in: Duration::ZERO,
            },
            ServeError::RetryBackoff {
                failures: 1,
                retry_in: Duration::ZERO,
            },
            ServeError::InvalidConfig {
                field: "queue_capacity",
                value: 0,
                minimum: 1,
            },
            ServeError::NoReadyShard { shards: 2 },
        ] {
            assert!(e.source().is_none(), "{e} must be a leaf error");
        }
    }
}
