//! The `serve-bench` workload driver: a Zipf-popular request stream
//! over the generator corpus, closed-loop concurrent clients, and two
//! deterministic probes that pin down the acceptance criteria.
//!
//! The workload models multi-tenant serving: a handful of matrix
//! structures (the corpus) receive traffic with Zipf-distributed
//! popularity, so a small plan cache captures most requests while the
//! long tail keeps missing. After the stream drains, two probes verify
//! the two contractual behaviours directly:
//!
//! * **hit probe** — the hottest structure is requested twice in a
//!   row; the second response must come from the cached plan with
//!   *zero* additional preprocessing.
//! * **cold probe** — a structure the corpus never saw is requested
//!   with a deadline equal to the preprocessing budget; the request
//!   must complete via the row-wise fallback rather than miss its
//!   deadline preparing a plan.
//!
//! Both outcomes, the latency distribution and the exact cache
//! counters are recorded into the serve telemetry before the manifest
//! snapshot, so the printed report and the JSON manifest agree.

use crate::batch::BatchConfig;
use crate::cache::CacheStats;
use crate::engine::{Request, ServeConfig, ServeEngine, ServePath, ServeStats};
use crate::error::ServeError;
use crate::fingerprint::MatrixFingerprint;
use crate::router::{RouterConfig, ShardRouter};
use crate::store::PlanStore;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spmm_data::corpus::{Corpus, CorpusProfile};
use spmm_data::generators;
use spmm_kernels::{Engine, EngineConfig};
use spmm_sparse::{CsrMatrix, DenseMatrix, SparseError};
use spmm_telemetry::{RunManifest, TelemetryHandle};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which kernel family the main `serve-bench` request stream
/// exercises. The deterministic probes (hit, cold, batch, plan-store)
/// always run SpMM so their contractual accounting is identical across
/// streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BenchOp {
    /// SpMM traffic with every 5th request probing SDDMM (the
    /// historical mixed stream). The default.
    Spmm,
    /// A pure SpMV stream (`k = 1` flat-vector requests).
    Spmv,
    /// A pure SpGEMM stream (sparse × sparse requests).
    Spgemm,
}

impl std::fmt::Display for BenchOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BenchOp::Spmm => "spmm",
            BenchOp::Spmv => "spmv",
            BenchOp::Spgemm => "spgemm",
        })
    }
}

impl std::str::FromStr for BenchOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "spmm" => Ok(BenchOp::Spmm),
            "spmv" => Ok(BenchOp::Spmv),
            "spgemm" => Ok(BenchOp::Spgemm),
            other => Err(format!(
                "unknown op '{other}' (expected spmm, spmv or spgemm)"
            )),
        }
    }
}

/// Workload knobs for [`run_serve_bench`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeBenchConfig {
    /// Total requests in the stream. Default 256.
    pub requests: usize,
    /// Closed-loop client threads. Default 4.
    pub concurrency: usize,
    /// Serving worker threads. Default 4.
    pub workers: usize,
    /// Plan-cache capacity — deliberately smaller than the corpus by
    /// default so the tail misses. Default 8.
    pub cache_capacity: usize,
    /// Admission queue bound. Default 256.
    pub queue_capacity: usize,
    /// Zipf skew exponent `s` (popularity of matrix `i` ∝
    /// `1/(i+1)^s`). Default 1.1.
    pub zipf_s: f64,
    /// Seed for the corpus and the request schedule. Default 42.
    pub seed: u64,
    /// Dense-operand width `k`. Default 32.
    pub k: usize,
    /// Kernel family of the main request stream. Default
    /// [`BenchOp::Spmm`].
    pub op: BenchOp,
    /// Per-request deadline. Default 250 ms.
    pub deadline: Duration,
    /// Preprocessing budget for the fallback decision. Default 25 ms.
    pub preprocess_budget: Duration,
    /// Multi-RHS batching for the serving engine, plus the forced
    /// -fusion probe. Default: disabled.
    pub batch: Option<BatchConfig>,
    /// Directory for a persistent [`PlanStore`]: the serving engine
    /// runs with the store as its disk tier (warm-loading at startup,
    /// read/write-through during the stream) and the warm-start probe
    /// measures cold-prepare vs store-load per corpus structure.
    /// Default: disabled.
    pub plan_store: Option<PathBuf>,
    /// Fleet size: with a value greater than 1 the stream is driven
    /// through a [`ShardRouter`] of this many engines (each configured
    /// from the knobs above) over a shared plan-store tier, and the
    /// shard probe kills one shard mid-stream to prove failover
    /// warm-loads instead of re-preparing. Default 1 (no router; the
    /// classic single-engine path, byte-for-byte unchanged).
    pub shards: usize,
    /// Run the structural-delta probe: for every corpus structure,
    /// apply a ≤ 1 %-of-nnz delta incrementally
    /// ([`Engine::apply_delta`]) and from scratch ([`Engine::prepare`]
    /// on the patched matrix), compare answers bit for bit, and time
    /// both paths — the incremental path must win by ≥ 3×. Default:
    /// disabled.
    pub deltas: bool,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            requests: 256,
            concurrency: 4,
            workers: 4,
            cache_capacity: 8,
            queue_capacity: 256,
            zipf_s: 1.1,
            seed: 42,
            k: 32,
            op: BenchOp::Spmm,
            deadline: Duration::from_millis(250),
            preprocess_budget: Duration::from_millis(25),
            batch: None,
            plan_store: None,
            shards: 1,
            deltas: false,
        }
    }
}

/// Outcome of the forced-fusion probe: a single-worker batched engine
/// is pinned on a cold decoy while same-structure requests pile up
/// behind it, so fusion happens deterministically; every fused
/// response is then compared bit for bit against an identically
/// configured *unbatched* engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct BatchProbe {
    /// Fused batches the probe engine executed.
    pub batches: u64,
    /// Requests served inside those batches.
    pub batched_requests: u64,
    /// Whether every probe response matched its unbatched reference
    /// bit for bit.
    pub exact: bool,
}

impl BatchProbe {
    /// Whether the probe observed its contractual outcome: at least
    /// one fused batch, and exact results.
    pub fn passed(&self) -> bool {
        self.batches >= 1 && self.exact
    }
}

/// Outcome of the warm-start probe: every corpus structure is prepared
/// cold (timed), persisted to the [`PlanStore`], and re-materialised
/// from disk (timed). A stored plan must answer SpMM *and* SDDMM
/// bit-identically to the live engine it snapshotted, and loading all
/// plans must be at least 10× faster than preparing them.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct PlanStoreProbe {
    /// Total wall-clock milliseconds of `Engine::prepare` across the
    /// corpus (the cold path a store-less restart would pay).
    pub cold_prepare_ms: f64,
    /// Total wall-clock milliseconds of `PlanStore::load` across the
    /// same structures (the warm path a restarted process pays).
    pub warm_load_ms: f64,
    /// `cold_prepare_ms / warm_load_ms`.
    pub speedup: f64,
    /// Structures measured (the corpus size).
    pub plans: usize,
    /// Whether every stored plan answered SpMM and SDDMM
    /// bit-identically to its live engine.
    pub exact: bool,
}

impl PlanStoreProbe {
    /// Whether the probe observed its contractual outcome: bit-exact
    /// answers and a ≥ 10× warm-start speedup.
    pub fn passed(&self) -> bool {
        self.exact && self.speedup >= 10.0
    }
}

/// Outcome of the structural-delta probe: for every corpus structure,
/// a small delta (≤ 1 % of nnz churned: half removed edges, half added
/// edges) is applied both incrementally ([`Engine::apply_delta`] on
/// the already-prepared engine) and from scratch ([`Engine::prepare`]
/// on the patched matrix). Operands are quantised onto the integer
/// grid so both engines must answer SpMM **bit-identically**; the
/// incremental path re-preprocesses only the row panels the delta
/// actually drifted, so it must be at least 3× faster in aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct DeltaProbe {
    /// Total wall-clock milliseconds of from-scratch `Engine::prepare`
    /// over the patched structures.
    pub prepare_ms: f64,
    /// Total wall-clock milliseconds of incremental
    /// `Engine::apply_delta` over the same deltas.
    pub apply_ms: f64,
    /// `prepare_ms / apply_ms`.
    pub speedup: f64,
    /// Structures probed (the corpus size).
    pub structures: usize,
    /// Edges churned (added + removed) across all probed deltas.
    pub edges_churned: usize,
    /// Whether every incremental engine answered SpMM bit-identically
    /// to its from-scratch twin.
    pub exact: bool,
}

impl DeltaProbe {
    /// Whether the probe observed its contractual outcome: bit-exact
    /// answers and a ≥ 3× incremental speedup on a ≤ 1 %-nnz delta.
    pub fn passed(&self) -> bool {
        self.exact && self.speedup >= 3.0
    }
}

/// Outcome of the shard probe (sharded runs only): a quantised probe
/// structure is served by its rendezvous owner (the *victim*), the
/// victim is killed mid-stream, and the structure is requested again.
/// The request must fail over to the next rendezvous candidate and be
/// served from the shared plan store — [`ServePath::CachedPlan`], zero
/// preprocessing — with both answers bit-equal to the sequential
/// reference. Fleet-wide duplicate prepares are counted as successful
/// `serve.store.save`s (plus `save_error`s) beyond the number of
/// distinct persisted fingerprints: every live prepare writes through
/// exactly once, so any excess means one structure was prepared twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardProbe {
    /// Fleet size the run started with.
    pub shards: usize,
    /// The probe structure's rendezvous owner, killed mid-stream.
    pub victim: usize,
    /// The shard that served the post-kill probe request.
    pub failover_shard: usize,
    /// The post-kill request's service path (must be
    /// [`ServePath::CachedPlan`]: a store warm load, not a re-prepare).
    pub failover_path: ServePath,
    /// Preprocessing the post-kill request paid (must be zero).
    pub failover_preprocess: Duration,
    /// Fleet-wide `serve.store.hit` count (read-through warm loads).
    pub store_warm_hits: u64,
    /// Structures prepared more than once fleet-wide (must be zero).
    pub duplicate_prepares: u64,
    /// Whether both probe responses were bit-equal to the sequential
    /// row-wise reference.
    pub exact: bool,
    /// Ready shards after the kill (must be `shards - 1`).
    pub ready_shards: usize,
}

impl ShardProbe {
    /// Whether the probe observed its contractual outcome: the killed
    /// shard's traffic failed over to a *different* shard that
    /// warm-loaded the plan from the store (cached path, zero
    /// preprocessing), answers stayed bit-exact, no structure was
    /// prepared twice fleet-wide, and exactly one shard went down.
    pub fn passed(&self) -> bool {
        self.exact
            && self.failover_shard != self.victim
            && self.failover_path == ServePath::CachedPlan
            && self.failover_preprocess.is_zero()
            && self.store_warm_hits >= 1
            && self.duplicate_prepares == 0
            && self.ready_shards + 1 == self.shards
    }
}

/// What [`run_serve_bench`] measured.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeBenchReport {
    /// The configuration the run used.
    pub config: ServeBenchConfig,
    /// Distinct matrix structures in the corpus.
    pub corpus_size: usize,
    /// Wall-clock duration of the request stream.
    pub wall: Duration,
    /// Completed requests per second of wall clock.
    pub throughput_rps: f64,
    /// Median end-to-end latency (submit → response), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// Plan-cache hit rate over the whole run, in `[0, 1]`.
    pub hit_rate: f64,
    /// Serving counters at the end of the run.
    pub stats: ServeStats,
    /// Plan-cache counters at the end of the run.
    pub cache: CacheStats,
    /// The hit probe's service path (must be [`ServePath::CachedPlan`]).
    pub hit_probe_path: ServePath,
    /// Preprocessing the hit probe paid (must be zero).
    pub hit_probe_preprocess: Duration,
    /// The cold probe's service path (must be [`ServePath::Fallback`]).
    pub cold_probe_path: ServePath,
    /// The forced-fusion probe's outcome; `None` when batching is off.
    pub batch_probe: Option<BatchProbe>,
    /// The warm-start probe's outcome; `None` when no plan store is
    /// configured.
    pub plan_store_probe: Option<PlanStoreProbe>,
    /// The shard probe's outcome; `None` on single-engine runs.
    pub shard_probe: Option<ShardProbe>,
    /// The structural-delta probe's outcome; `None` when `deltas` is
    /// off.
    pub delta_probe: Option<DeltaProbe>,
    /// The run manifest snapshot, counters and probe outcomes included.
    pub manifest: RunManifest,
}

impl ServeBenchReport {
    /// Whether every probe observed its contractual outcome (the batch
    /// probe only participates when batching is enabled).
    pub fn probes_passed(&self) -> bool {
        self.hit_probe_path == ServePath::CachedPlan
            && self.hit_probe_preprocess.is_zero()
            && self.cold_probe_path == ServePath::Fallback
            && self.batch_probe.is_none_or(|p| p.passed())
            && self.plan_store_probe.is_none_or(|p| p.passed())
            && self.shard_probe.is_none_or(|p| p.passed())
            && self.delta_probe.is_none_or(|p| p.passed())
    }

    /// Renders the human-readable summary the CLI prints.
    pub fn render(&self) -> String {
        let c = &self.config;
        let s = &self.stats;
        let mut out = String::new();
        out.push_str(&format!(
            "serve-bench[{}]: {} requests over {} matrices, {} clients, {} workers, cache {}, zipf s={:.2}\n",
            c.op, c.requests, self.corpus_size, c.concurrency, c.workers, c.cache_capacity, c.zipf_s
        ));
        if c.shards > 1 {
            out.push_str(&format!(
                "  sharded: {} engines behind rendezvous routing, shared plan-store tier\n",
                c.shards
            ));
        }
        out.push_str(&format!(
            "  completed {}  rejected {}  fallbacks {}  deadline-exceeded {}  failed {}\n",
            s.completed, s.rejected, s.fallbacks, s.deadline_exceeded, s.failed
        ));
        out.push_str(&format!(
            "  throughput {:.1} req/s   p50 {:.3} ms   p99 {:.3} ms\n",
            self.throughput_rps, self.p50_ms, self.p99_ms
        ));
        out.push_str(&format!(
            "  plan cache: {} hits / {} misses (hit rate {:.1}%), {} evictions, {} inserts\n",
            self.cache.hits,
            self.cache.misses,
            self.hit_rate * 100.0,
            self.cache.evictions,
            self.cache.inserts
        ));
        out.push_str(&format!(
            "  hit probe:  path={} preprocess={:?} -> {}\n",
            self.hit_probe_path,
            self.hit_probe_preprocess,
            if self.hit_probe_path == ServePath::CachedPlan && self.hit_probe_preprocess.is_zero() {
                "ok (cached plan, zero additional preprocessing)"
            } else {
                "FAILED"
            }
        ));
        out.push_str(&format!(
            "  cold probe: path={} -> {}\n",
            self.cold_probe_path,
            if self.cold_probe_path == ServePath::Fallback {
                "ok (cold miss under deadline served by row-wise fallback)"
            } else {
                "FAILED"
            }
        ));
        if let Some(batch) = &c.batch {
            out.push_str(&format!(
                "  batching: max_batch_k={} k_block={}   stream: {} batches / {} fused requests ({} deadline skips)\n",
                batch.max_batch_k,
                batch.k_block,
                s.batches,
                s.batched_requests,
                s.batch_deadline_skips
            ));
        }
        if let Some(probe) = &self.batch_probe {
            out.push_str(&format!(
                "  batch probe: batches={} fused={} exact={} -> {}\n",
                probe.batches,
                probe.batched_requests,
                probe.exact,
                if probe.passed() {
                    "ok (fused responses bit-identical to unbatched references)"
                } else {
                    "FAILED"
                }
            ));
        }
        if let Some(probe) = &self.plan_store_probe {
            out.push_str(&format!(
                "  plan store probe: {} plans, cold prepare {:.3} ms, warm load {:.3} ms, speedup {:.1}x, exact={} -> {}\n",
                probe.plans,
                probe.cold_prepare_ms,
                probe.warm_load_ms,
                probe.speedup,
                probe.exact,
                if probe.passed() {
                    "ok (bit-exact warm start, >= 10x faster than prepare)"
                } else {
                    "FAILED"
                }
            ));
        }
        if let Some(probe) = &self.delta_probe {
            out.push_str(&format!(
                "  delta probe: {} structures, {} edges churned, prepare {:.3} ms, apply {:.3} ms, speedup {:.1}x, exact={} -> {}\n",
                probe.structures,
                probe.edges_churned,
                probe.prepare_ms,
                probe.apply_ms,
                probe.speedup,
                probe.exact,
                if probe.passed() {
                    "ok (bit-exact incremental re-prepare, >= 3x faster than from-scratch)"
                } else {
                    "FAILED"
                }
            ));
        }
        if let Some(probe) = &self.shard_probe {
            out.push_str(&format!(
                "  shard probe: victim={} failover={} path={} preprocess={:?} warm-hits={} duplicates={} ready={}/{} exact={} -> {}\n",
                probe.victim,
                probe.failover_shard,
                probe.failover_path,
                probe.failover_preprocess,
                probe.store_warm_hits,
                probe.duplicate_prepares,
                probe.ready_shards,
                probe.shards,
                probe.exact,
                if probe.passed() {
                    "ok (failover warm-loaded from the store; zero duplicate prepares fleet-wide)"
                } else {
                    "FAILED"
                }
            ));
        }
        out
    }
}

/// Draws `n` Zipf-distributed corpus indices: index `i` with weight
/// `1/(i+1)^s`. Shared with the chaos driver so both workloads draw
/// from the same popularity model.
pub(crate) fn zipf_schedule(n: usize, population: usize, s: f64, rng: &mut SmallRng) -> Vec<usize> {
    let weights: Vec<f64> = (0..population)
        .map(|i| 1.0 / ((i + 1) as f64).powf(s))
        .collect();
    let mut cdf = Vec::with_capacity(population);
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let u: f64 = rng.random::<f64>() * total;
            cdf.partition_point(|&c| c <= u).min(population - 1)
        })
        .collect()
}

/// Nearest-rank percentile (ceil convention): the smallest sample such
/// that at least `⌈q·n⌉` samples are ≤ it. The rank is 1-based and
/// clamped into the sample range, so `q=0` returns the minimum and
/// `q=1` the maximum — never an out-of-range index and never a rank
/// below the first sample.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1].as_secs_f64() * 1e3
}

/// Forces fusion deterministically and checks exactness: a 1-worker
/// batched engine is warmed on `matrix`, pinned on a cold decoy, and
/// handed three same-structure requests that queue up behind the decoy
/// and coalesce. Each fused response is compared bit for bit against
/// an identically configured unbatched engine.
fn run_batch_probe(
    batch: BatchConfig,
    budget: Duration,
    matrix: &Arc<CsrMatrix<f32>>,
    k: usize,
    seed: u64,
) -> Result<BatchProbe, ServeError> {
    let k = k.max(1);
    let batched = ServeEngine::<f32>::start(
        ServeConfig::builder()
            .workers(1)
            .queue_capacity(64)
            .preprocess_budget(budget)
            .batching(batch)
            .build()?,
    );
    let solo = ServeEngine::<f32>::start(
        ServeConfig::builder()
            .workers(1)
            .queue_capacity(64)
            .preprocess_budget(budget)
            .build()?,
    );
    let xs: Vec<Arc<DenseMatrix<f32>>> = (0..3u64)
        .map(|i| {
            Arc::new(generators::random_dense::<f32>(
                matrix.ncols(),
                k,
                seed ^ (0xBA7C + i),
            ))
        })
        .collect();
    batched.execute(Request::spmm(matrix.clone(), xs[0].clone()))?;
    let decoy_m = Arc::new(generators::uniform_random::<f32>(
        611,
        401,
        8,
        seed ^ 0xDEC0,
    ));
    let decoy_x = Arc::new(generators::random_dense::<f32>(
        decoy_m.ncols(),
        k,
        seed ^ 4,
    ));
    let decoy = batched.submit(Request::spmm(decoy_m, decoy_x))?;
    let tickets: Vec<_> = xs
        .iter()
        .map(|x| batched.submit(Request::spmm(matrix.clone(), x.clone())))
        .collect::<Result<_, _>>()?;
    decoy.wait()?;
    let mut exact = true;
    for (x, ticket) in xs.iter().zip(tickets) {
        let got = ticket.wait()?.output.into_dense();
        let reference = solo
            .execute(Request::spmm(matrix.clone(), x.clone()))?
            .output
            .into_dense();
        exact &= match (got, reference) {
            (Some(got), Some(reference)) => got.data() == reference.data(),
            _ => false,
        };
    }
    let stats = batched.stats();
    Ok(BatchProbe {
        batches: stats.batches,
        batched_requests: stats.batched_requests,
        exact,
    })
}

/// Measures the warm-start contract: for every corpus structure, time
/// a cold `Engine::prepare`, persist the plan, time `PlanStore::load`,
/// and compare the stored engine's SpMM and SDDMM answers bit for bit
/// against the live engine's.
fn run_plan_store_probe(
    store: &PlanStore,
    matrices: &[Arc<CsrMatrix<f32>>],
    k: usize,
    seed: u64,
    telemetry: &TelemetryHandle,
) -> Result<PlanStoreProbe, ServeError> {
    let engine_config = EngineConfig::default();
    let k = k.max(1);
    let mut cold = Duration::ZERO;
    let mut warm = Duration::ZERO;
    let mut exact = true;
    for (i, m) in matrices.iter().enumerate() {
        let fp = MatrixFingerprint::of(m);
        let cold_start = Instant::now();
        let live = Engine::prepare(m, &engine_config).map_err(ServeError::Prepare)?;
        cold += cold_start.elapsed();
        store.save(&fp, &live).map_err(ServeError::Prepare)?;
        let warm_start = Instant::now();
        let stored = store
            .load::<f32>(&fp, telemetry)
            .map_err(ServeError::Prepare)?
            .ok_or_else(|| {
                ServeError::Prepare(SparseError::Io("just-saved plan is missing".into()))
            })?;
        warm += warm_start.elapsed();
        let x = generators::random_dense::<f32>(m.ncols(), k, seed ^ (0x5707 + i as u64));
        let y = generators::random_dense::<f32>(m.nrows(), k, seed ^ (0x7057 + i as u64));
        let spmm_exact = live.spmm(&x).map_err(ServeError::Execute)?.data()
            == stored.spmm(&x).map_err(ServeError::Execute)?.data();
        let sddmm_exact = live.sddmm(&x, &y).map_err(ServeError::Execute)?
            == stored.sddmm(&x, &y).map_err(ServeError::Execute)?;
        exact &= spmm_exact && sddmm_exact;
    }
    let cold_prepare_ms = cold.as_secs_f64() * 1e3;
    let warm_load_ms = warm.as_secs_f64() * 1e3;
    let speedup = if warm_load_ms > 0.0 {
        cold_prepare_ms / warm_load_ms
    } else {
        f64::INFINITY
    };
    Ok(PlanStoreProbe {
        cold_prepare_ms,
        warm_load_ms,
        speedup,
        plans: matrices.len(),
        exact,
    })
}

/// Builds the probe's deterministic ≤ 1 %-nnz delta for `m`: every
/// `nnz / budget`-th edge is removed (spreading the churn across the
/// whole row range, so several row panels drift) and an equal number
/// of previously-absent integer-grid edges is added on a disjoint set
/// of coordinates.
#[allow(clippy::type_complexity)]
fn probe_delta(m: &CsrMatrix<f32>, seed: u64) -> (Vec<(usize, usize, f32)>, Vec<(usize, usize)>) {
    let nnz = m.nnz();
    let budget = (nnz / 200).max(1);
    let step = (nnz / budget).max(1);
    let mut removed = Vec::with_capacity(budget);
    let mut edge = 0usize;
    'rows: for r in 0..m.nrows() {
        for &c in m.row_cols(r) {
            if edge.is_multiple_of(step) {
                removed.push((r, c as usize));
                if removed.len() == budget {
                    break 'rows;
                }
            }
            edge += 1;
        }
    }
    let mut used: std::collections::HashSet<(usize, usize)> = removed.iter().copied().collect();
    let mut added = Vec::with_capacity(budget);
    let nrows = m.nrows();
    let mut r = (seed as usize) % nrows.max(1);
    let mut attempts = 0;
    while added.len() < budget && attempts < nrows * 2 {
        attempts += 1;
        let cols = m.row_cols(r);
        let fresh = (0..m.ncols() as u32)
            .find(|c| cols.binary_search(c).is_err() && !used.contains(&(r, *c as usize)));
        if let Some(c) = fresh {
            used.insert((r, c as usize));
            added.push((r, c as usize, ((added.len() % 9) as f32) - 4.0));
        }
        r = (r + 1) % nrows;
    }
    (added, removed)
}

/// Measures the incremental re-prepare contract: for every corpus
/// structure (values quantised onto the integer grid), time
/// `Engine::apply_delta` against a from-scratch `Engine::prepare` of
/// the patched matrix, and compare SpMM answers bit for bit.
fn run_delta_probe(
    matrices: &[Arc<CsrMatrix<f32>>],
    k: usize,
    seed: u64,
) -> Result<DeltaProbe, ServeError> {
    let engine_config = EngineConfig::default();
    let k = k.max(1);
    let mut prepare = Duration::ZERO;
    let mut apply = Duration::ZERO;
    let mut edges_churned = 0usize;
    let mut exact = true;
    for (i, m) in matrices.iter().enumerate() {
        // quantised twin: plan decisions are structural, so timings are
        // representative, and integer-grid values make the bit-equality
        // comparison meaningful across different plans
        let mut q = (**m).clone();
        quantize_f32(q.values_mut());
        let base = Engine::prepare(&q, &engine_config).map_err(ServeError::Prepare)?;
        let (added, removed) = probe_delta(&q, seed ^ i as u64);
        edges_churned += added.len() + removed.len();
        let apply_start = Instant::now();
        let incremental = base
            .apply_delta(&added, &removed)
            .map_err(ServeError::Prepare)?;
        apply += apply_start.elapsed();
        let patched = q
            .apply_structural_delta(&added, &removed)
            .map_err(ServeError::Prepare)?;
        let prepare_start = Instant::now();
        let fresh = Engine::prepare(&patched, &engine_config).map_err(ServeError::Prepare)?;
        prepare += prepare_start.elapsed();
        let mut x = generators::random_dense::<f32>(q.ncols(), k, seed ^ (0xDE17A + i as u64));
        quantize_f32(x.data_mut());
        exact &= incremental.spmm(&x).map_err(ServeError::Execute)?.data()
            == fresh.spmm(&x).map_err(ServeError::Execute)?.data();
    }
    let prepare_ms = prepare.as_secs_f64() * 1e3;
    let apply_ms = apply.as_secs_f64() * 1e3;
    let speedup = if apply_ms > 0.0 {
        prepare_ms / apply_ms
    } else {
        f64::INFINITY
    };
    Ok(DeltaProbe {
        prepare_ms,
        apply_ms,
        speedup,
        structures: matrices.len(),
        edges_churned,
        exact,
    })
}

/// Runs the serving benchmark and returns the measured report. The
/// probes' contractual outcomes are asserted by the caller (or CI) via
/// [`ServeBenchReport::probes_passed`], not by this function — a
/// degraded run still reports honestly.
///
/// # Errors
/// Propagates probe-request failures ([`ServeError`]); the streamed
/// requests themselves only tally into the counters.
pub fn run_serve_bench(config: &ServeBenchConfig) -> Result<ServeBenchReport, ServeError> {
    if config.shards > 1 {
        return run_sharded_serve_bench(config);
    }
    let budget = config.preprocess_budget.max(Duration::from_millis(1));
    let corpus = Corpus::<f32>::generate(CorpusProfile::Quick, config.seed);
    let matrices: Vec<Arc<CsrMatrix<f32>>> = corpus
        .matrices
        .into_iter()
        .map(|e| Arc::new(e.matrix))
        .collect();
    assert!(!matrices.is_empty(), "corpus must not be empty");
    // shared dense operands per structure (x for SpMM/SDDMM, y for SDDMM)
    let xs: Vec<Arc<DenseMatrix<f32>>> = matrices
        .iter()
        .map(|m| {
            Arc::new(generators::random_dense::<f32>(
                m.ncols(),
                config.k,
                config.seed ^ 1,
            ))
        })
        .collect();
    let ys: Vec<Arc<DenseMatrix<f32>>> = matrices
        .iter()
        .map(|m| {
            Arc::new(generators::random_dense::<f32>(
                m.nrows(),
                config.k,
                config.seed ^ 2,
            ))
        })
        .collect();
    // per-structure operands for the alternative streams, built only
    // when that stream is requested
    let vs: Vec<Arc<Vec<f32>>> = if config.op == BenchOp::Spmv {
        matrices
            .iter()
            .map(|m| {
                Arc::new(
                    generators::random_dense::<f32>(m.ncols(), 1, config.seed ^ 4)
                        .data()
                        .to_vec(),
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    let bs: Vec<Arc<CsrMatrix<f32>>> = if config.op == BenchOp::Spgemm {
        matrices
            .iter()
            .map(|m| {
                Arc::new(generators::uniform_random::<f32>(
                    m.ncols(),
                    96,
                    4,
                    config.seed ^ 5,
                ))
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let schedule = zipf_schedule(config.requests, matrices.len(), config.zipf_s, &mut rng);

    let store = match &config.plan_store {
        Some(dir) => Some(Arc::new(PlanStore::open(dir).map_err(ServeError::Prepare)?)),
        None => None,
    };
    let mut serve_config = ServeConfig::builder()
        .workers(config.workers)
        .queue_capacity(config.queue_capacity)
        .cache_capacity(config.cache_capacity)
        .preprocess_budget(budget);
    if let Some(batch) = config.batch {
        serve_config = serve_config.batching(batch);
    }
    if let Some(store) = &store {
        serve_config = serve_config.plan_store(Arc::clone(store));
    }
    let serve = ServeEngine::<f32>::start(serve_config.build()?);

    let concurrency = config.concurrency.max(1);
    let stream_start = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|client| {
                let serve = &serve;
                let schedule = &schedule;
                let (matrices, xs, ys, vs, bs) = (&matrices, &xs, &ys, &vs, &bs);
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    // closed loop: this client walks its stripe in order
                    for (idx, &mi) in schedule
                        .iter()
                        .enumerate()
                        .filter(|(idx, _)| idx % concurrency == client)
                    {
                        let request = match config.op {
                            BenchOp::Spmv => Request::spmv(matrices[mi].clone(), vs[mi].clone()),
                            BenchOp::Spgemm => {
                                Request::spgemm(matrices[mi].clone(), bs[mi].clone())
                            }
                            // every 5th request exercises the SDDMM path
                            BenchOp::Spmm if idx % 5 == 4 => {
                                Request::sddmm(matrices[mi].clone(), xs[mi].clone(), ys[mi].clone())
                            }
                            BenchOp::Spmm => Request::spmm(matrices[mi].clone(), xs[mi].clone()),
                        }
                        .deadline(config.deadline);
                        let submitted = Instant::now();
                        // a rejected submission is already counted by
                        // the engine; only successes carry a latency
                        if let Ok(ticket) = serve.submit(request) {
                            if ticket.wait().is_ok() {
                                latencies.push(submitted.elapsed());
                            }
                        }
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            // a panicked client contributes no latencies; its requests
            // are still accounted for in the engine counters
            .flat_map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall = stream_start.elapsed();
    latencies.sort_unstable();

    // -- hit probe: the hottest structure, back to back -----------------
    let hot = 0; // Zipf weight is maximal at index 0
    serve.execute(Request::spmm(matrices[hot].clone(), xs[hot].clone()))?;
    let hit_probe = serve.execute(Request::spmm(matrices[hot].clone(), xs[hot].clone()))?;

    // -- cold probe: unseen structure, deadline == budget ⇒ the tight
    //    path fires deterministically and must degrade, not miss --------
    let cold_matrix = Arc::new(generators::uniform_random::<f32>(
        731,
        389,
        6,
        config.seed ^ 0xC01D,
    ));
    let cold_x = Arc::new(generators::random_dense::<f32>(
        cold_matrix.ncols(),
        config.k,
        config.seed ^ 3,
    ));
    let cold_probe = serve.execute(Request::spmm(cold_matrix, cold_x).deadline(budget))?;

    // -- batch probe: deterministic forced fusion + exactness check -----
    let batch_probe = config
        .batch
        .map(|batch| run_batch_probe(batch, budget, &matrices[hot], config.k, config.seed))
        .transpose()?;

    // -- plan store probe: cold prepare vs warm load, bit-exactness -----
    let plan_store_probe = store
        .as_ref()
        .map(|store| {
            run_plan_store_probe(store, &matrices, config.k, config.seed, serve.telemetry())
        })
        .transpose()?;

    // -- delta probe: incremental vs from-scratch re-prepare ------------
    let delta_probe = config
        .deltas
        .then(|| run_delta_probe(&matrices, config.k, config.seed))
        .transpose()?;

    let stats = serve.stats();
    let cache = serve.cache_stats();
    let p50_ms = percentile_ms(&latencies, 0.50);
    let p99_ms = percentile_ms(&latencies, 0.99);
    let throughput_rps = if wall.as_secs_f64() > 0.0 {
        latencies.len() as f64 / wall.as_secs_f64()
    } else {
        0.0
    };

    // record the results into the same manifest that carries the exact
    // serve.* counters, then snapshot
    let telemetry = serve.telemetry();
    telemetry.gauge("bench.throughput_rps", throughput_rps);
    telemetry.gauge("bench.p50_ms", p50_ms);
    telemetry.gauge("bench.p99_ms", p99_ms);
    telemetry.gauge("bench.hit_rate", cache.hit_rate());
    telemetry.meta("bench.op", &config.op.to_string());
    telemetry.meta(
        "bench.hit_probe",
        &format!(
            "path={} preprocess_ns={}",
            hit_probe.path,
            hit_probe.preprocess.as_nanos()
        ),
    );
    telemetry.meta("bench.cold_probe", &format!("path={}", cold_probe.path));
    if let Some(probe) = &batch_probe {
        telemetry.gauge("bench.batch.stream_batches", stats.batches as f64);
        telemetry.gauge(
            "bench.batch.stream_fused_requests",
            stats.batched_requests as f64,
        );
        telemetry.meta(
            "bench.batch_probe",
            &format!(
                "batches={} fused_requests={} exact={}",
                probe.batches, probe.batched_requests, probe.exact
            ),
        );
    }
    if let Some(probe) = &plan_store_probe {
        telemetry.gauge("bench.store.cold_prepare_ms", probe.cold_prepare_ms);
        telemetry.gauge("bench.store.warm_load_ms", probe.warm_load_ms);
        telemetry.gauge("bench.store.speedup", probe.speedup);
        telemetry.meta(
            "bench.plan_store_probe",
            &format!(
                "plans={} cold_prepare_ms={:.3} warm_load_ms={:.3} speedup={:.2} exact={}",
                probe.plans, probe.cold_prepare_ms, probe.warm_load_ms, probe.speedup, probe.exact
            ),
        );
    }
    if let Some(probe) = &delta_probe {
        record_delta_probe(telemetry, probe);
    }
    let manifest = serve.manifest();

    Ok(ServeBenchReport {
        config: config.clone(),
        corpus_size: matrices.len(),
        wall,
        throughput_rps,
        p50_ms,
        p99_ms,
        hit_rate: cache.hit_rate(),
        stats,
        cache,
        hit_probe_path: hit_probe.path,
        hit_probe_preprocess: hit_probe.preprocess,
        cold_probe_path: cold_probe.path,
        batch_probe,
        plan_store_probe,
        shard_probe: None,
        delta_probe,
        manifest,
    })
}

/// Records the delta probe's outcome into the run telemetry so the
/// JSON manifest (`--json`, the CI perf smoke) carries the speedup
/// gauge the ≥ 3× assertion reads.
fn record_delta_probe(telemetry: &TelemetryHandle, probe: &DeltaProbe) {
    telemetry.gauge("bench.delta.prepare_ms", probe.prepare_ms);
    telemetry.gauge("bench.delta.apply_ms", probe.apply_ms);
    telemetry.gauge("bench.delta.speedup", probe.speedup);
    telemetry.meta(
        "bench.delta_probe",
        &format!(
            "structures={} edges_churned={} prepare_ms={:.3} apply_ms={:.3} speedup={:.2} exact={}",
            probe.structures,
            probe.edges_churned,
            probe.prepare_ms,
            probe.apply_ms,
            probe.speedup,
            probe.exact
        ),
    );
}

/// Monotonic suffix for ephemeral shard-bench store directories, so
/// concurrent runs in one process never share a tier by accident.
static EPHEMERAL_STORES: AtomicU64 = AtomicU64::new(0);

/// Quantises values onto the integer grid `{-8, …, 8}` so the shard
/// probe's sums are exactly representable in `f32` and addition is
/// associative — the failover path must be *bit*-equal to the
/// sequential reference, whichever shard and kernel path serves it.
fn quantize_f32(values: &mut [f32]) {
    for v in values {
        *v = (*v * 8.0).round().clamp(-8.0, 8.0);
    }
}

/// The sharded serve-bench: the same corpus, schedule and probes as the
/// single-engine path, but driven through a [`ShardRouter`] over a
/// shared plan-store tier, with the shard probe killing the probe
/// structure's owning shard mid-stream (see [`ShardProbe`]).
fn run_sharded_serve_bench(config: &ServeBenchConfig) -> Result<ServeBenchReport, ServeError> {
    let budget = config.preprocess_budget.max(Duration::from_millis(1));
    let corpus = Corpus::<f32>::generate(CorpusProfile::Quick, config.seed);
    let matrices: Vec<Arc<CsrMatrix<f32>>> = corpus
        .matrices
        .into_iter()
        .map(|e| Arc::new(e.matrix))
        .collect();
    assert!(!matrices.is_empty(), "corpus must not be empty");
    let xs: Vec<Arc<DenseMatrix<f32>>> = matrices
        .iter()
        .map(|m| {
            Arc::new(generators::random_dense::<f32>(
                m.ncols(),
                config.k,
                config.seed ^ 1,
            ))
        })
        .collect();
    let ys: Vec<Arc<DenseMatrix<f32>>> = matrices
        .iter()
        .map(|m| {
            Arc::new(generators::random_dense::<f32>(
                m.nrows(),
                config.k,
                config.seed ^ 2,
            ))
        })
        .collect();
    let vs: Vec<Arc<Vec<f32>>> = if config.op == BenchOp::Spmv {
        matrices
            .iter()
            .map(|m| {
                Arc::new(
                    generators::random_dense::<f32>(m.ncols(), 1, config.seed ^ 4)
                        .data()
                        .to_vec(),
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    let bs: Vec<Arc<CsrMatrix<f32>>> = if config.op == BenchOp::Spgemm {
        matrices
            .iter()
            .map(|m| {
                Arc::new(generators::uniform_random::<f32>(
                    m.ncols(),
                    96,
                    4,
                    config.seed ^ 5,
                ))
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let schedule = zipf_schedule(config.requests, matrices.len(), config.zipf_s, &mut rng);

    // the router's whole economy needs a shared store tier: use the
    // configured directory, or an ephemeral one torn down after the run
    let (store_dir, ephemeral) = match &config.plan_store {
        Some(dir) => (dir.clone(), false),
        None => {
            let dir = std::env::temp_dir().join(format!(
                "spmm-serve-bench-shards-{}-{}",
                std::process::id(),
                EPHEMERAL_STORES.fetch_add(1, Ordering::Relaxed)
            ));
            // stale leftovers from a killed run must not skew the
            // duplicate-prepare accounting
            let _ = std::fs::remove_dir_all(&dir);
            (dir, true)
        }
    };
    let store = Arc::new(PlanStore::open(&store_dir).map_err(ServeError::Prepare)?);

    let mut shard_template = ServeConfig::builder()
        .workers(config.workers)
        .queue_capacity(config.queue_capacity)
        .cache_capacity(config.cache_capacity)
        .preprocess_budget(budget);
    if let Some(batch) = config.batch {
        shard_template = shard_template.batching(batch);
    }
    let router = ShardRouter::<f32>::start(
        RouterConfig::builder()
            .shards(config.shards)
            .shard(shard_template.build()?)
            .plan_store(Arc::clone(&store))
            .build()?,
    )?;

    // -- shard probe, phase 1: the owner prepares (and persists) the
    //    quantised probe structure before the stream ------------------
    let mut probe_matrix = generators::uniform_random::<f32>(397, 311, 6, config.seed ^ 0x51AD);
    quantize_f32(probe_matrix.values_mut());
    let probe_matrix = Arc::new(probe_matrix);
    let mut probe_x = generators::random_dense::<f32>(
        probe_matrix.ncols(),
        config.k.max(1),
        config.seed ^ 0x51AE,
    );
    quantize_f32(probe_x.data_mut());
    let probe_x = Arc::new(probe_x);
    let reference = spmm_kernels::spmm::spmm_rowwise_seq(&probe_matrix, &probe_x)
        .map_err(ServeError::Execute)?;
    let probe_fp = MatrixFingerprint::of(&probe_matrix);
    let victim = router.owner(&probe_fp);
    let r1 = router.execute(Request::spmm(probe_matrix.clone(), probe_x.clone()))?;
    let exact_before = r1
        .output
        .into_dense()
        .is_some_and(|d| d.data() == reference.data());

    let concurrency = config.concurrency.max(1);
    // the stream runs in two phases with the kill at the barrier
    // between them: killing a shard while other clients are mid-flight
    // would let the victim's in-flight prepares race the survivor's
    // re-prepares of the same structures before the write-through
    // saves land, and the dedup ledger could legitimately show a
    // transient duplicate. At the barrier the victim drains fully, so
    // everything it prepared is persisted and phase 2's re-routed
    // traffic must warm-load instead of re-preparing.
    let run_phase = |range: std::ops::Range<usize>| -> Vec<Duration> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..concurrency)
                .map(|client| {
                    let router = &router;
                    let schedule = &schedule;
                    let (matrices, xs, ys, vs, bs) = (&matrices, &xs, &ys, &vs, &bs);
                    let range = range.clone();
                    scope.spawn(move || {
                        let mut latencies = Vec::new();
                        for idx in range.filter(|idx| idx % concurrency == client) {
                            let mi = schedule[idx];
                            let request = match config.op {
                                BenchOp::Spmv => {
                                    Request::spmv(matrices[mi].clone(), vs[mi].clone())
                                }
                                BenchOp::Spgemm => {
                                    Request::spgemm(matrices[mi].clone(), bs[mi].clone())
                                }
                                BenchOp::Spmm if idx % 5 == 4 => Request::sddmm(
                                    matrices[mi].clone(),
                                    xs[mi].clone(),
                                    ys[mi].clone(),
                                ),
                                BenchOp::Spmm => {
                                    Request::spmm(matrices[mi].clone(), xs[mi].clone())
                                }
                            }
                            .deadline(config.deadline);
                            let submitted = Instant::now();
                            if let Ok(ticket) = router.submit(request) {
                                if ticket.wait().is_ok() {
                                    latencies.push(submitted.elapsed());
                                }
                            }
                        }
                        latencies
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_default())
                .collect()
        })
    };
    let half = schedule.len() / 2;
    let stream_start = Instant::now();
    let mut latencies = run_phase(0..half);
    router.kill(victim);
    latencies.extend(run_phase(half..schedule.len()));
    let wall = stream_start.elapsed();
    latencies.sort_unstable();

    // -- shard probe, phase 2: the structure's traffic must fail over
    //    and warm-load from the store, bit-exactly --------------------
    let failover_shard = router.route(&probe_fp).ok_or(ServeError::NoReadyShard {
        shards: config.shards,
    })?;
    let r2 = router.execute(Request::spmm(probe_matrix.clone(), probe_x.clone()))?;
    let failover_path = r2.path;
    let failover_preprocess = r2.preprocess;
    let exact_after = r2
        .output
        .into_dense()
        .is_some_and(|d| d.data() == reference.data());

    // -- hit probe / cold probe, through the router -------------------
    let hot = 0;
    router.execute(Request::spmm(matrices[hot].clone(), xs[hot].clone()))?;
    let hit_probe = router.execute(Request::spmm(matrices[hot].clone(), xs[hot].clone()))?;
    let cold_matrix = Arc::new(generators::uniform_random::<f32>(
        731,
        389,
        6,
        config.seed ^ 0xC01D,
    ));
    let cold_x = Arc::new(generators::random_dense::<f32>(
        cold_matrix.ncols(),
        config.k,
        config.seed ^ 3,
    ));
    let cold_probe = router.execute(Request::spmm(cold_matrix, cold_x).deadline(budget))?;

    // duplicate accounting must be read *before* the standalone probes
    // below write to (or read from) the same store directory
    let pre = router.manifest();
    let counter = |name: &str| pre.counters.get(name).copied().unwrap_or(0);
    let saves = counter("serve.store.save") + counter("serve.store.save_error");
    let persisted = store.list().map_err(ServeError::Prepare)?.len() as u64;
    let shard_probe = ShardProbe {
        shards: config.shards,
        victim,
        failover_shard,
        failover_path,
        failover_preprocess,
        store_warm_hits: counter("serve.store.hit"),
        duplicate_prepares: saves.saturating_sub(persisted),
        exact: exact_before && exact_after,
        ready_shards: router.health().ready_shards(),
    };

    let batch_probe = config
        .batch
        .map(|batch| run_batch_probe(batch, budget, &matrices[hot], config.k, config.seed))
        .transpose()?;
    let plan_store_probe = if config.plan_store.is_some() {
        Some(run_plan_store_probe(
            &store,
            &matrices,
            config.k,
            config.seed,
            router.telemetry(),
        )?)
    } else {
        None
    };
    let delta_probe = config
        .deltas
        .then(|| run_delta_probe(&matrices, config.k, config.seed))
        .transpose()?;

    let stats = router.stats().fleet;
    let cache = router.cache_stats();
    let p50_ms = percentile_ms(&latencies, 0.50);
    let p99_ms = percentile_ms(&latencies, 0.99);
    let throughput_rps = if wall.as_secs_f64() > 0.0 {
        latencies.len() as f64 / wall.as_secs_f64()
    } else {
        0.0
    };

    let telemetry = router.telemetry();
    telemetry.gauge("bench.throughput_rps", throughput_rps);
    telemetry.gauge("bench.p50_ms", p50_ms);
    telemetry.gauge("bench.p99_ms", p99_ms);
    telemetry.gauge("bench.hit_rate", cache.hit_rate());
    telemetry.gauge("bench.shards", config.shards as f64);
    telemetry.meta("bench.op", &config.op.to_string());
    telemetry.meta(
        "bench.hit_probe",
        &format!(
            "path={} preprocess_ns={}",
            hit_probe.path,
            hit_probe.preprocess.as_nanos()
        ),
    );
    telemetry.meta("bench.cold_probe", &format!("path={}", cold_probe.path));
    telemetry.meta(
        "bench.shard_probe",
        &format!(
            "shards={} victim={} failover={} path={} preprocess_ns={} warm_hits={} duplicates={} ready_shards={} exact={}",
            shard_probe.shards,
            shard_probe.victim,
            shard_probe.failover_shard,
            shard_probe.failover_path,
            shard_probe.failover_preprocess.as_nanos(),
            shard_probe.store_warm_hits,
            shard_probe.duplicate_prepares,
            shard_probe.ready_shards,
            shard_probe.exact
        ),
    );
    if let Some(probe) = &batch_probe {
        telemetry.meta(
            "bench.batch_probe",
            &format!(
                "batches={} fused_requests={} exact={}",
                probe.batches, probe.batched_requests, probe.exact
            ),
        );
    }
    if let Some(probe) = &plan_store_probe {
        telemetry.gauge("bench.store.cold_prepare_ms", probe.cold_prepare_ms);
        telemetry.gauge("bench.store.warm_load_ms", probe.warm_load_ms);
        telemetry.gauge("bench.store.speedup", probe.speedup);
        telemetry.meta(
            "bench.plan_store_probe",
            &format!(
                "plans={} cold_prepare_ms={:.3} warm_load_ms={:.3} speedup={:.2} exact={}",
                probe.plans, probe.cold_prepare_ms, probe.warm_load_ms, probe.speedup, probe.exact
            ),
        );
    }
    if let Some(probe) = &delta_probe {
        record_delta_probe(telemetry, probe);
    }
    let manifest = router.manifest();
    if ephemeral {
        let _ = std::fs::remove_dir_all(&store_dir);
    }

    Ok(ServeBenchReport {
        config: config.clone(),
        corpus_size: matrices.len(),
        wall,
        throughput_rps,
        p50_ms,
        p99_ms,
        hit_rate: cache.hit_rate(),
        stats,
        cache,
        hit_probe_path: hit_probe.path,
        hit_probe_preprocess: hit_probe.preprocess,
        cold_probe_path: cold_probe.path,
        batch_probe,
        plan_store_probe,
        shard_probe: Some(shard_probe),
        delta_probe,
        manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_schedule_is_skewed_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let schedule = zipf_schedule(2000, 10, 1.2, &mut rng);
        assert!(schedule.iter().all(|&i| i < 10));
        let head = schedule.iter().filter(|&&i| i == 0).count();
        let tail = schedule.iter().filter(|&&i| i == 9).count();
        assert!(
            head > tail * 3,
            "head {head} should dominate tail {tail} at s=1.2"
        );
    }

    #[test]
    fn percentiles_follow_the_nearest_rank_convention_exactly() {
        // n = 1: every quantile is the lone sample
        let one = [Duration::from_millis(7)];
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_ms(&one, q), 7.0, "q={q}");
        }

        // n = 10, samples 1..=10 ms: rank = ⌈10q⌉ clamped to [1, 10]
        let ten: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&ten, 0.0), 1.0);
        assert_eq!(percentile_ms(&ten, 0.10), 1.0);
        assert_eq!(percentile_ms(&ten, 0.50), 5.0);
        assert_eq!(percentile_ms(&ten, 0.51), 6.0);
        assert_eq!(percentile_ms(&ten, 0.90), 9.0);
        assert_eq!(percentile_ms(&ten, 0.99), 10.0);
        assert_eq!(percentile_ms(&ten, 1.0), 10.0);

        // n = 100, samples 1..=100 ms: p50 is the 50th sample, p99 the
        // 99th — the old round-based index was off by one here
        let hundred: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&hundred, 0.50), 50.0);
        assert_eq!(percentile_ms(&hundred, 0.99), 99.0);
        assert_eq!(percentile_ms(&hundred, 0.999), 100.0);
        assert_eq!(percentile_ms(&hundred, 1.0), 100.0);

        assert_eq!(percentile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn quick_bench_run_satisfies_the_probes() {
        let config = ServeBenchConfig {
            requests: 24,
            concurrency: 2,
            workers: 2,
            cache_capacity: 4,
            ..ServeBenchConfig::default()
        };
        let report = run_serve_bench(&config).unwrap();
        assert!(report.probes_passed(), "{}", report.render());
        assert_eq!(report.hit_probe_preprocess, Duration::ZERO);
        assert_eq!(report.cold_probe_path, ServePath::Fallback);
        // counters in the manifest are the counters in the stats
        assert_eq!(
            report.manifest.counters["serve.cache.hit"],
            report.cache.hits
        );
        assert_eq!(
            report.manifest.counters["serve.completed"],
            report.stats.completed
        );
        // every streamed request is accounted for
        assert_eq!(
            report.stats.submitted + report.stats.rejected,
            // streamed requests + the three probe requests
            (config.requests + 3) as u64
        );
        let rendered = report.render();
        assert!(rendered.contains("plan cache"), "{rendered}");
    }

    #[test]
    fn spmv_and_spgemm_streams_run_and_keep_probe_accounting() {
        for op in [BenchOp::Spmv, BenchOp::Spgemm] {
            let config = ServeBenchConfig {
                requests: 16,
                concurrency: 2,
                workers: 2,
                cache_capacity: 4,
                op,
                ..ServeBenchConfig::default()
            };
            let report = run_serve_bench(&config).unwrap();
            assert!(report.probes_passed(), "[{op}] {}", report.render());
            assert_eq!(
                report.stats.submitted + report.stats.rejected,
                (config.requests + 3) as u64,
                "[{op}] probes must stay SpMM so accounting is unchanged"
            );
            assert_eq!(report.stats.failed, 0, "[{op}] {}", report.render());
            assert_eq!(report.manifest.meta["bench.op"], op.to_string());
            assert!(report.render().contains(&format!("serve-bench[{op}]")));
        }
    }

    #[test]
    fn bench_op_round_trips_through_strings() {
        for op in [BenchOp::Spmm, BenchOp::Spmv, BenchOp::Spgemm] {
            assert_eq!(op.to_string().parse::<BenchOp>().unwrap(), op);
        }
        assert!("cholesky".parse::<BenchOp>().is_err());
    }

    #[test]
    fn plan_store_bench_probe_is_exact_and_warm_starts() {
        let dir = std::env::temp_dir().join(format!(
            "spmm-bench-store-{}-{:p}",
            std::process::id(),
            &() as *const ()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let config = ServeBenchConfig {
            requests: 12,
            concurrency: 2,
            workers: 2,
            cache_capacity: 4,
            plan_store: Some(dir.clone()),
            ..ServeBenchConfig::default()
        };
        let report = run_serve_bench(&config).unwrap();
        let probe = report.plan_store_probe.expect("plan store was configured");
        assert!(probe.exact, "stored plans deviated: {}", report.render());
        assert_eq!(probe.plans, report.corpus_size);
        assert!(
            probe.speedup > 1.0,
            "loading must beat preparing: {}",
            report.render()
        );
        // the stream itself ran write-through
        assert!(report.manifest.counters.get("serve.store.save").copied() >= Some(1));
        assert!(
            report.manifest.meta.contains_key("bench.plan_store_probe"),
            "probe outcome must land in the manifest"
        );
        // the probe's standalone engines never touch the stream counters
        assert_eq!(
            report.stats.submitted + report.stats.rejected,
            (config.requests + 3) as u64
        );
        let rendered = report.render();
        assert!(rendered.contains("plan store probe"), "{rendered}");

        // a second run over the same directory warm-loads at startup
        let report2 = run_serve_bench(&config).unwrap();
        assert!(
            report2.manifest.counters.get("serve.store.warm").copied() >= Some(1),
            "restart must warm-load persisted plans"
        );
        // warm-loaded plans must not confuse the other probes: the hit
        // probe still hits, and the never-persisted cold structure
        // still degrades to the fallback
        assert_eq!(report2.hit_probe_path, ServePath::CachedPlan);
        assert_eq!(report2.cold_probe_path, ServePath::Fallback);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_bench_fails_over_without_duplicate_prepares() {
        let config = ServeBenchConfig {
            requests: 24,
            concurrency: 2,
            workers: 1,
            cache_capacity: 4,
            shards: 2,
            ..ServeBenchConfig::default()
        };
        let report = run_serve_bench(&config).unwrap();
        let probe = report.shard_probe.expect("shards > 1 was configured");
        assert!(probe.passed(), "{}", report.render());
        assert!(report.probes_passed(), "{}", report.render());
        assert_eq!(probe.duplicate_prepares, 0, "{}", report.render());
        assert_eq!(probe.failover_path, ServePath::CachedPlan);
        assert!(probe.failover_preprocess.is_zero());
        assert_ne!(probe.failover_shard, probe.victim);
        assert_eq!(probe.ready_shards, 1, "one of two shards was killed");
        assert_eq!(
            report.manifest.counters.get("serve.router.shard_killed"),
            Some(&1)
        );
        assert!(
            report.manifest.counters.get("serve.router.routed").copied() >= Some(1),
            "router must have routed the stream"
        );
        assert!(
            report.manifest.meta.contains_key("bench.shard_probe"),
            "probe outcome must land in the manifest"
        );
        let rendered = report.render();
        assert!(rendered.contains("sharded: 2 engines"), "{rendered}");
        assert!(rendered.contains("shard probe"), "{rendered}");
    }

    #[test]
    fn delta_probe_is_exact_and_beats_from_scratch_prepare() {
        let config = ServeBenchConfig {
            requests: 12,
            concurrency: 2,
            workers: 2,
            cache_capacity: 4,
            deltas: true,
            ..ServeBenchConfig::default()
        };
        let report = run_serve_bench(&config).unwrap();
        let probe = report.delta_probe.expect("deltas were enabled");
        assert!(
            probe.exact,
            "incremental plans deviated: {}",
            report.render()
        );
        assert_eq!(probe.structures, report.corpus_size);
        assert!(probe.edges_churned >= probe.structures * 2);
        // the hard 3x bar is asserted by the release-mode CI perf
        // smoke; in-test (possibly debug, loaded machine) the floor is
        // that incremental must still win
        assert!(
            probe.speedup > 1.0,
            "apply_delta must beat prepare: {}",
            report.render()
        );
        assert!(
            report.manifest.gauges.contains_key("bench.delta.speedup"),
            "speedup gauge must land in the manifest for the CI assert"
        );
        assert!(
            report.manifest.meta.contains_key("bench.delta_probe"),
            "probe outcome must land in the manifest"
        );
        let rendered = report.render();
        assert!(rendered.contains("delta probe"), "{rendered}");
    }

    #[test]
    fn batched_bench_forces_fusion_and_stays_exact() {
        let config = ServeBenchConfig {
            requests: 24,
            concurrency: 2,
            workers: 2,
            cache_capacity: 4,
            batch: Some(BatchConfig::default()),
            ..ServeBenchConfig::default()
        };
        let report = run_serve_bench(&config).unwrap();
        let probe = report.batch_probe.expect("batching was enabled");
        assert!(probe.passed(), "{}", report.render());
        assert!(probe.batches >= 1);
        assert!(probe.batched_requests >= 2);
        assert!(probe.exact, "fused responses deviated from references");
        assert!(report.probes_passed(), "{}", report.render());
        let rendered = report.render();
        assert!(rendered.contains("batch probe"), "{rendered}");
        assert!(
            report.manifest.meta.contains_key("bench.batch_probe"),
            "probe outcome must land in the manifest"
        );
    }
}
