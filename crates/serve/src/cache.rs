//! Sharded, capacity-bounded LRU cache of prepared plans.
//!
//! The cache maps a [`MatrixFingerprint`] to an `Arc<Engine<T>>` — one
//! paid-for run of the Fig 5 preprocessing pipeline, shared by every
//! request on the same sparsity structure. Three properties carry the
//! serving layer:
//!
//! * **Coalesced preparation.** A fingerprint's slot is inserted
//!   atomically under its shard lock, so under a thundering herd
//!   exactly one caller runs `Engine::prepare`; the rest block on the
//!   slot's condvar and share the result.
//! * **Bounded capacity.** Each shard holds at most
//!   `ceil(capacity / shards)` entries; inserting into a full shard
//!   evicts the shard's least-recently-used *settled* entry. In-flight
//!   prepares are never evicted (doing so would let a concurrent
//!   lookup of the same fingerprint re-prepare it); a shard whose
//!   residents are all in flight briefly overflows instead. With
//!   `shards = 1` the eviction order is the exact global LRU order,
//!   which the tests pin down.
//! * **Exact counters.** Every lookup increments exactly one of
//!   hit/miss (hit: a usable or in-flight entry existed; miss: this
//!   call created the slot, claimed a retry, was suppressed, or found
//!   nothing), under the shard lock's serialization — the
//!   `serve.cache.*` telemetry counters in the run manifest agree with
//!   [`CacheStats`] under any interleaving.
//!
//! Failure handling is stateful, not fire-and-forget:
//!
//! * A prepare that **returns an error** leaves the slot `Failed` with
//!   a per-fingerprint failure count. Lookups inside the exponential
//!   backoff window (base × 2ⁿ⁻¹, capped, plus deterministic
//!   seed-derived jitter) fast-fail with [`ServeError::RetryBackoff`]
//!   without running the pipeline; the first lookup past the window
//!   claims the slot and retries.
//! * After [`PlanCacheConfig::breaker_threshold`] consecutive failures
//!   the fingerprint's **circuit breaker opens**: lookups fast-fail
//!   with [`ServeError::BreakerOpen`] until the cooldown elapses, then
//!   exactly one half-open probe is admitted — success closes the
//!   breaker, failure re-opens it for another cooldown. Transitions
//!   are counted as `serve.breaker.{open,half_open,close}` and retry
//!   outcomes as `serve.retry.{suppressed,attempt,scheduled}`.
//! * A prepare that **panics** poisons its slot: later lookups report
//!   [`ServeError::PoisonedPlan`] deterministically until the entry is
//!   evicted, [`PlanCache::remove`]d, or swept by
//!   [`PlanCache::clear_poisoned`]. The serving layer quarantines such
//!   fingerprints and degrades to the row-wise fallback.
//!
//! All waiting is on the injectable clock ([`ClockHandle`]), so tests
//! step through backoff windows and cooldowns without sleeping.

use crate::error::ServeError;
use crate::fingerprint::MatrixFingerprint;
use crate::lock_clean;
use crate::store::PlanStore;
use spmm_faults::{splitmix64, ClockHandle, FaultPoint};
use spmm_kernels::Engine;
use spmm_sparse::{Scalar, SparseError};
use spmm_telemetry::TelemetryHandle;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Fault point fired inside the prepare closure, within the cache's
/// `catch_unwind` boundary: an `Error` action surfaces as a failed
/// prepare (feeding the backoff/breaker machinery) and a `Panic`
/// action poisons the slot exactly like a real mid-prepare panic.
pub static FAULT_SERVE_CACHE_PREPARE: FaultPoint = FaultPoint::new("serve.cache.prepare");

/// Fault point fired inside [`PlanCache::apply_delta`], between the
/// incremental re-prepare and the commit of the new epoch — the widest
/// window in which a delta can die with the new plan fully built but
/// not yet installed. Any action (error or panic) aborts the delta:
/// the old fingerprint's slot is restored and keeps serving.
pub static FAULT_SERVE_CACHE_DELTA: FaultPoint = FaultPoint::new("serve.cache.delta");

/// Construction options for [`PlanCache`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PlanCacheConfig {
    /// Total capacity bound across all shards (at least 1 per shard is
    /// enforced). Default 32.
    pub capacity: usize,
    /// Number of independently locked shards. More shards cut
    /// contention; `1` makes the LRU eviction order globally exact.
    /// Default 8.
    pub shards: usize,
    /// Sink for the `serve.cache.*`, `serve.retry.*` and
    /// `serve.breaker.*` counters. Disabled by default.
    pub telemetry: TelemetryHandle,
    /// First backoff window after a failed prepare; window `n` is
    /// `base × 2ⁿ⁻¹` (capped) plus jitter. Default 10 ms.
    pub retry_backoff_base: Duration,
    /// Upper bound on the raw (pre-jitter) backoff window. Default 1 s.
    pub retry_backoff_cap: Duration,
    /// Consecutive prepare failures that open the fingerprint's
    /// circuit breaker. Default 3.
    pub breaker_threshold: u32,
    /// How long an open breaker suppresses attempts before admitting a
    /// half-open probe. Default 250 ms.
    pub breaker_cooldown: Duration,
    /// Seed for the deterministic backoff jitter (combined with the
    /// fingerprint and failure count). Default 0.
    pub retry_jitter_seed: u64,
    /// Time source for backoff windows and breaker cooldowns. Tests
    /// inject a manual clock; defaults to the system clock.
    pub clock: ClockHandle,
    /// Optional disk-backed second tier ([`PlanStore`]): a miss first
    /// tries to load a persisted plan (read-through, counted as
    /// `serve.store.{hit,miss,reject}`) and a freshly prepared plan is
    /// persisted back (write-through, `serve.store.{save,save_error}`,
    /// never failing the request). Disabled by default.
    pub store: Option<Arc<PlanStore>>,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            capacity: 32,
            shards: 8,
            telemetry: TelemetryHandle::default(),
            retry_backoff_base: Duration::from_millis(10),
            retry_backoff_cap: Duration::from_secs(1),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            retry_jitter_seed: 0,
            clock: ClockHandle::default(),
            store: None,
        }
    }
}

impl PlanCacheConfig {
    /// Starts a builder initialised with the defaults.
    pub fn builder() -> PlanCacheConfigBuilder {
        PlanCacheConfigBuilder::default()
    }
}

/// Builder for [`PlanCacheConfig`].
#[derive(Debug, Clone, Default)]
pub struct PlanCacheConfigBuilder {
    config: PlanCacheConfig,
}

impl PlanCacheConfigBuilder {
    /// Sets the total capacity bound.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.config.capacity = capacity;
        self
    }

    /// Sets the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the telemetry sink.
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Sets the first backoff window after a failed prepare.
    pub fn retry_backoff_base(mut self, base: Duration) -> Self {
        self.config.retry_backoff_base = base;
        self
    }

    /// Sets the upper bound on the raw backoff window.
    pub fn retry_backoff_cap(mut self, cap: Duration) -> Self {
        self.config.retry_backoff_cap = cap;
        self
    }

    /// Sets the consecutive-failure count that opens the breaker.
    pub fn breaker_threshold(mut self, threshold: u32) -> Self {
        self.config.breaker_threshold = threshold;
        self
    }

    /// Sets the open-breaker cooldown before a half-open probe.
    pub fn breaker_cooldown(mut self, cooldown: Duration) -> Self {
        self.config.breaker_cooldown = cooldown;
        self
    }

    /// Sets the backoff jitter seed.
    pub fn retry_jitter_seed(mut self, seed: u64) -> Self {
        self.config.retry_jitter_seed = seed;
        self
    }

    /// Sets the time source.
    pub fn clock(mut self, clock: ClockHandle) -> Self {
        self.config.clock = clock;
        self
    }

    /// Attaches a disk-backed plan store as the cache's second tier.
    pub fn store(mut self, store: Arc<PlanStore>) -> Self {
        self.config.store = Some(store);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> PlanCacheConfig {
        self.config
    }
}

/// A point-in-time snapshot of the cache counters.
///
/// `#[non_exhaustive]`: construct it via [`PlanCache::stats`] (or
/// [`CacheStats::default`]) and read it through the typed accessors,
/// so new counters can be added without breaking downstream code.
/// Fleet-level aggregation sums snapshots with [`CacheStats::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups that found an entry (ready or in flight).
    pub hits: u64,
    /// Lookups that found nothing usable (created a slot, claimed a
    /// retry, or were suppressed by backoff/breaker).
    pub misses: u64,
    /// Entries dropped to make room at capacity.
    pub evictions: u64,
    /// Slots created (each corresponds to one initial prepare
    /// attempt; backoff retries reuse the slot and are not counted).
    pub inserts: u64,
    /// In-place value refreshes via [`PlanCache::update_values`].
    pub refreshes: u64,
    /// Entries currently cached (including failed and poisoned slots).
    pub len: usize,
    /// Entries currently poisoned (a prepare panicked); recover them
    /// with [`PlanCache::clear_poisoned`].
    pub poisoned: usize,
    /// The configured total capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing usable.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to make room at capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Slots created (one initial prepare attempt each).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// In-place value refreshes.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries currently poisoned.
    pub fn poisoned(&self) -> usize {
        self.poisoned
    }

    /// The configured total capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Component-wise sum of two snapshots — the fleet view a
    /// [`ShardRouter`](crate::ShardRouter) aggregates over its shards.
    /// Counters add; `len`/`poisoned`/`capacity` add too, so the merged
    /// snapshot reads as "entries resident fleet-wide out of the
    /// fleet-wide capacity".
    #[must_use]
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            inserts: self.inserts + other.inserts,
            refreshes: self.refreshes + other.refreshes,
            len: self.len + other.len,
            poisoned: self.poisoned + other.poisoned,
            capacity: self.capacity + other.capacity,
        }
    }
}

/// Whether the fingerprint's circuit breaker is tripped. Half-open is
/// a transient condition (an admitted probe), never a stored state:
/// the probe's slot is `Preparing`, and its outcome stores `Closed`
/// (success) or `Open` (failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed,
    Open,
}

/// The persistent record of a fingerprint's failed prepare(s).
#[derive(Debug, Clone)]
struct FailureState {
    error: SparseError,
    /// Consecutive failed prepares (resets on success).
    failures: u32,
    /// Clock instant after which the next attempt is admitted.
    next_retry_at: Duration,
    breaker: Breaker,
}

/// State of one fingerprint's slot.
#[derive(Debug)]
enum SlotState<T> {
    /// A caller is running `Engine::prepare`; wait on the condvar.
    Preparing,
    /// The shared, ready-to-execute plan.
    Ready(Arc<Engine<T>>),
    /// An exclusive in-place mutation — a value refresh or a
    /// structural delta — has claimed the slot. Readers keep being
    /// served the carried pre-mutation engine (epoch semantics: there
    /// is no window in which lookups miss); other mutations wait on
    /// the condvar until the claimer settles the slot back to `Ready`.
    Updating(Arc<Engine<T>>),
    /// The last prepare returned an error; the slot persists so
    /// backoff and breaker state survive between attempts.
    Failed(FailureState),
    /// The prepare panicked.
    Poisoned,
}

#[derive(Debug)]
struct PlanSlot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

impl<T: Scalar> PlanSlot<T> {
    fn preparing() -> Self {
        PlanSlot {
            state: Mutex::new(SlotState::Preparing),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, new: SlotState<T>) {
        *lock_clean(&self.state) = new;
        self.ready.notify_all();
    }

    /// Blocks until the slot leaves `Preparing`.
    fn wait(&self) -> Result<Arc<Engine<T>>, ServeError> {
        let mut state = lock_clean(&self.state);
        loop {
            match &*state {
                SlotState::Preparing => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner)
                }
                SlotState::Ready(engine) | SlotState::Updating(engine) => {
                    return Ok(Arc::clone(engine))
                }
                SlotState::Failed(fs) => return Err(ServeError::Prepare(fs.error.clone())),
                SlotState::Poisoned => return Err(ServeError::PoisonedPlan),
            }
        }
    }

    /// Claims the slot for an exclusive mutation: waits out an
    /// in-flight prepare *and any other in-flight mutation*, then moves
    /// `Ready` → `Updating` and returns the engine being mutated. The
    /// claimer owns the slot until it calls [`PlanSlot::fulfill`] —
    /// either with the mutated engine or, on failure, with the engine
    /// returned here (restoring the pre-mutation epoch). This is what
    /// makes mutations linearizable: a value refresh that lands during
    /// an in-flight structural delta waits here instead of overwriting
    /// the slot mid-delta and being silently reverted by the delta's
    /// restore path.
    fn claim_for_update(&self) -> Result<Arc<Engine<T>>, ServeError> {
        let mut state = lock_clean(&self.state);
        loop {
            match &*state {
                SlotState::Preparing | SlotState::Updating(_) => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner)
                }
                SlotState::Ready(engine) => {
                    let engine = Arc::clone(engine);
                    *state = SlotState::Updating(Arc::clone(&engine));
                    return Ok(engine);
                }
                SlotState::Failed(fs) => return Err(ServeError::Prepare(fs.error.clone())),
                SlotState::Poisoned => return Err(ServeError::PoisonedPlan),
            }
        }
    }
}

#[derive(Debug)]
struct Entry<T> {
    slot: Arc<PlanSlot<T>>,
    /// Global tick of the last lookup that touched this entry.
    last_used: u64,
    /// Epoch of the plan: `0` for a plan prepared (or warm-loaded)
    /// from scratch, `n+1` for a plan installed by a structural delta
    /// applied to a generation-`n` plan. Purely observational — it
    /// lets operators and tests tell a delta-descended plan from a
    /// fresh prepare of the same structure.
    generation: u64,
}

#[derive(Debug, Default)]
struct Shard<T> {
    entries: HashMap<MatrixFingerprint, Entry<T>>,
}

/// Sharded LRU cache of fingerprint → prepared plan (see the module
/// docs for the concurrency and failure-recovery contracts).
#[derive(Debug)]
pub struct PlanCache<T> {
    shards: Vec<Mutex<Shard<T>>>,
    per_shard_capacity: usize,
    capacity: usize,
    telemetry: TelemetryHandle,
    retry_backoff_base: Duration,
    retry_backoff_cap: Duration,
    breaker_threshold: u32,
    breaker_cooldown: Duration,
    retry_jitter_seed: u64,
    clock: ClockHandle,
    store: Option<Arc<PlanStore>>,
    /// Monotonic lookup clock driving LRU recency.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    refreshes: AtomicU64,
}

impl<T: Scalar> PlanCache<T> {
    /// An empty cache with the given configuration.
    pub fn new(config: PlanCacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard_capacity = config.capacity.max(1).div_ceil(shards);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            capacity: per_shard_capacity * shards,
            telemetry: config.telemetry,
            retry_backoff_base: config.retry_backoff_base,
            retry_backoff_cap: config.retry_backoff_cap,
            breaker_threshold: config.breaker_threshold.max(1),
            breaker_cooldown: config.breaker_cooldown,
            retry_jitter_seed: config.retry_jitter_seed,
            clock: config.clock,
            store: config.store,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, fp: &MatrixFingerprint) -> &Mutex<Shard<T>> {
        // the FNV hash is well mixed; the low bits pick the shard
        &self.shards[(fp.hash() as usize) % self.shards.len()]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.cache.hit", 1);
    }

    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.cache.miss", 1);
    }

    /// Backoff window after the `failures`-th consecutive failure:
    /// `base × 2^(failures-1)` capped at the configured ceiling, plus
    /// a deterministic jitter of up to 25 % derived from the jitter
    /// seed, the fingerprint and the failure count.
    fn backoff_after(&self, fp: &MatrixFingerprint, failures: u32) -> Duration {
        let exp = failures.saturating_sub(1).min(16);
        let raw = self
            .retry_backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.retry_backoff_cap);
        let quarter = (raw.as_nanos() / 4).min(u128::from(u64::MAX)) as u64;
        let jitter = if quarter == 0 {
            0
        } else {
            splitmix64(self.retry_jitter_seed ^ fp.hash() ^ u64::from(failures)) % (quarter + 1)
        };
        raw + Duration::from_nanos(jitter)
    }

    /// Non-blocking lookup: `Some` iff a fully prepared plan is cached
    /// (bumping its recency and counting a hit); counts a miss
    /// otherwise. This is the deadline-pressured path — a caller that
    /// would fall back rather than wait for an in-flight prepare.
    pub fn try_get(&self, fp: &MatrixFingerprint) -> Option<Arc<Engine<T>>> {
        let tick = self.next_tick();
        let mut shard = lock_clean(self.shard_for(fp));
        if let Some(entry) = shard.entries.get_mut(fp) {
            let ready = {
                let state = lock_clean(&entry.slot.state);
                match &*state {
                    // an in-flight mutation still serves its pre-
                    // mutation snapshot: deltas have no eviction window
                    SlotState::Ready(engine) | SlotState::Updating(engine) => {
                        Some(Arc::clone(engine))
                    }
                    _ => None,
                }
            };
            if let Some(engine) = ready {
                entry.last_used = tick;
                drop(shard);
                self.count_hit();
                return Some(engine);
            }
        }
        drop(shard);
        self.count_miss();
        None
    }

    /// The coalescing lookup: returns the cached plan for `fp`,
    /// preparing it with `prepare` if absent. Returns the engine plus
    /// `true` when *this call* ran the prepare (a cold miss or an
    /// admitted retry), `false` when the plan was already cached or in
    /// flight.
    ///
    /// Concurrent calls on the same fingerprint run `prepare` exactly
    /// once; the others block until it resolves. `prepare` runs
    /// *outside* the shard lock, so unrelated fingerprints are never
    /// blocked behind a slow preprocessing run.
    ///
    /// # Errors
    /// [`ServeError::Prepare`] when `prepare` fails (the slot persists
    /// as failed and schedules a backoff window);
    /// [`ServeError::RetryBackoff`] / [`ServeError::BreakerOpen`] when
    /// a previous failure's backoff window or breaker cooldown has not
    /// elapsed (the attempt is suppressed without running `prepare`);
    /// [`ServeError::PoisonedPlan`] when a previous `prepare` for this
    /// fingerprint panicked and the poisoned entry is still cached.
    ///
    /// # Panics
    /// Re-raises `prepare`'s panic in the preparing caller after
    /// poisoning the slot.
    pub fn get_or_prepare(
        &self,
        fp: MatrixFingerprint,
        prepare: impl FnOnce() -> Result<Engine<T>, SparseError>,
    ) -> Result<(Arc<Engine<T>>, bool), ServeError> {
        let tick = self.next_tick();
        let (slot, created) = {
            let mut shard = lock_clean(self.shard_for(&fp));
            match shard.entries.get_mut(&fp) {
                Some(entry) => {
                    entry.last_used = tick;
                    (Arc::clone(&entry.slot), false)
                }
                None => {
                    self.evict_lru_if_full(&mut shard);
                    let slot = Arc::new(PlanSlot::preparing());
                    shard.entries.insert(
                        fp,
                        Entry {
                            slot: Arc::clone(&slot),
                            last_used: tick,
                            generation: 0,
                        },
                    );
                    (slot, true)
                }
            }
        };
        let mut prior: Option<FailureState> = None;
        if created {
            self.count_miss();
            self.inserts.fetch_add(1, Ordering::Relaxed);
            self.telemetry.counter("serve.cache.insert", 1);
        } else {
            // Resolve the existing slot: wait on in-flight/ready slots,
            // claim or suppress failed ones.
            let claimed = {
                let mut state = lock_clean(&slot.state);
                if let SlotState::Failed(fs) = &*state {
                    let now = self.clock.now();
                    if now < fs.next_retry_at {
                        let (failures, retry_in) = (fs.failures, fs.next_retry_at - now);
                        let err = match fs.breaker {
                            Breaker::Open => ServeError::BreakerOpen { failures, retry_in },
                            Breaker::Closed => ServeError::RetryBackoff { failures, retry_in },
                        };
                        drop(state);
                        self.count_miss();
                        self.telemetry.counter("serve.retry.suppressed", 1);
                        return Err(err);
                    }
                    prior = Some(fs.clone());
                    *state = SlotState::Preparing;
                    true
                } else {
                    false
                }
            };
            if !claimed {
                self.count_hit();
                return slot.wait().map(|engine| (engine, false));
            }
            self.count_miss();
            self.telemetry.counter("serve.retry.attempt", 1);
            if prior.as_ref().is_some_and(|p| p.breaker == Breaker::Open) {
                self.telemetry.counter("serve.breaker.half_open", 1);
            }
        }
        // Disk-tier read-through. Both paths that are about to pay for
        // a live prepare — the slot creator and an admitted retry —
        // first consult the persistent store. A stored plan fulfils the
        // slot like a warm cache entry (zero preprocessing, reported as
        // not-fresh); a malformed or stale file is *rejected* and the
        // lookup degrades to the live prepare below.
        if let Some(store) = &self.store {
            match store.load::<T>(&fp, &self.telemetry) {
                Ok(Some(engine)) => {
                    let engine = Arc::new(engine);
                    slot.fulfill(SlotState::Ready(Arc::clone(&engine)));
                    self.telemetry.counter("serve.store.hit", 1);
                    if prior.as_ref().is_some_and(|p| p.breaker == Breaker::Open) {
                        self.telemetry.counter("serve.breaker.close", 1);
                    }
                    return Ok((engine, false));
                }
                Ok(None) => self.telemetry.counter("serve.store.miss", 1),
                Err(_) => self.telemetry.counter("serve.store.reject", 1),
            }
        }
        match catch_unwind(AssertUnwindSafe(|| {
            FAULT_SERVE_CACHE_PREPARE
                .fire()
                .map_err(|e| SparseError::InvalidStructure(e.to_string()))?;
            prepare()
        })) {
            Ok(Ok(engine)) => {
                let engine = Arc::new(engine);
                // Write-through *before* the slot settles: persist the
                // paid-for plan so later processes warm-start. The
                // order matters — a `Ready` slot is evictable, and if
                // it were evicted while the save was still in flight a
                // concurrent lookup of the same fingerprint would miss
                // both tiers and duplicate the prepare (and the save).
                // Keeping the slot `Preparing` until the file lands
                // closes that window. A save failure is logged as a
                // counter and never fails the request — the caller has
                // a perfectly good engine in hand.
                if let Some(store) = &self.store {
                    match store.save(&fp, &engine) {
                        Ok(_) => self.telemetry.counter("serve.store.save", 1),
                        Err(_) => self.telemetry.counter("serve.store.save_error", 1),
                    }
                }
                slot.fulfill(SlotState::Ready(Arc::clone(&engine)));
                if prior.as_ref().is_some_and(|p| p.breaker == Breaker::Open) {
                    self.telemetry.counter("serve.breaker.close", 1);
                }
                Ok((engine, true))
            }
            Ok(Err(e)) => {
                let now = self.clock.now();
                let failures = prior.as_ref().map_or(0, |p| p.failures).saturating_add(1);
                let probe_failed = prior.as_ref().is_some_and(|p| p.breaker == Breaker::Open);
                let (breaker, next_retry_at) = if probe_failed || failures >= self.breaker_threshold
                {
                    self.telemetry.counter("serve.breaker.open", 1);
                    (Breaker::Open, now + self.breaker_cooldown)
                } else {
                    self.telemetry.counter("serve.retry.scheduled", 1);
                    (Breaker::Closed, now + self.backoff_after(&fp, failures))
                };
                slot.fulfill(SlotState::Failed(FailureState {
                    error: e.clone(),
                    failures,
                    next_retry_at,
                    breaker,
                }));
                Err(ServeError::Prepare(e))
            }
            Err(panic) => {
                slot.fulfill(SlotState::Poisoned);
                self.telemetry.counter("serve.cache.poisoned", 1);
                resume_unwind(panic)
            }
        }
    }

    /// Seeds the cache with an already-materialised plan — the serving
    /// engine's startup warm-load path, where plans are read from a
    /// [`PlanStore`] before traffic arrives. Counts as an insert but
    /// neither a hit nor a miss (no lookup happened). Returns `false`
    /// without touching the cache when `fp` already has an entry.
    pub fn insert_ready(&self, fp: MatrixFingerprint, engine: Arc<Engine<T>>) -> bool {
        let tick = self.next_tick();
        let mut shard = lock_clean(self.shard_for(&fp));
        if shard.entries.contains_key(&fp) {
            return false;
        }
        self.evict_lru_if_full(&mut shard);
        let slot = Arc::new(PlanSlot {
            state: Mutex::new(SlotState::Ready(engine)),
            ready: Condvar::new(),
        });
        shard.entries.insert(
            fp,
            Entry {
                slot,
                last_used: tick,
                generation: 0,
            },
        );
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.cache.insert", 1);
        true
    }

    /// Refreshes the cached plan for `fp` in place with new values
    /// (original nonzero order). The fingerprint covers structure
    /// only, so the entry, its LRU position and the hit/miss counters
    /// are untouched — in-flight requests keep executing their
    /// consistent snapshot while new lookups see the new values.
    /// Returns `Ok(false)` when nothing is cached under `fp`.
    ///
    /// The refresh *claims* the slot (`Ready` → `Updating`) before
    /// reading the engine, so it serializes against any in-flight
    /// structural delta on the same fingerprint: it refreshes whatever
    /// the delta settled on, instead of overwriting the slot mid-delta
    /// with a pre-delta snapshot and being reverted by the delta's
    /// restore — a lost update that would resurrect stale values.
    ///
    /// # Errors
    /// [`ServeError::Prepare`] on a value-length mismatch, plus
    /// whatever an in-flight prepare for this fingerprint resolves to.
    pub fn update_values(&self, fp: &MatrixFingerprint, values: &[T]) -> Result<bool, ServeError> {
        let slot = {
            let shard = lock_clean(self.shard_for(fp));
            match shard.entries.get(fp) {
                Some(entry) => Arc::clone(&entry.slot),
                None => return Ok(false),
            }
        };
        let current = slot.claim_for_update()?;
        let refreshed = match current.with_updated_values(values) {
            Ok(refreshed) => refreshed,
            Err(e) => {
                // release the claim; the pre-refresh plan stays live
                slot.fulfill(SlotState::Ready(current));
                return Err(ServeError::Prepare(e));
            }
        };
        slot.fulfill(SlotState::Ready(Arc::new(refreshed)));
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.cache.refresh", 1);
        Ok(true)
    }

    /// Applies a structural delta to the plan cached under `fp` and
    /// installs the result as a *new* entry keyed by the post-delta
    /// structure's fingerprint, which is returned. Returns `Ok(None)`
    /// when nothing is cached under `fp` (callers fall back to a
    /// from-scratch prepare of the patched matrix).
    ///
    /// The swap is epoch-style and leaves no unserveable window:
    ///
    /// 1. the old slot is claimed (`Ready` → `Updating`) — lookups of
    ///    `fp` keep being served the pre-delta engine throughout;
    /// 2. [`Engine::apply_delta`] re-prepares incrementally, off every
    ///    lock;
    /// 3. with a store attached, the new epoch is persisted under the
    ///    *new* fingerprint ([`PlanStore::save_delta`]) before anything
    ///    in memory changes — the old file is untouched, so a crash at
    ///    any instant leaves a warm-loadable snapshot;
    /// 4. the new entry is installed (generation = old + 1), and only
    ///    then is the old slot released back to `Ready`.
    ///
    /// Any failure — a malformed delta, an injected fault at
    /// `kernel.delta`, [`FAULT_SERVE_CACHE_DELTA`] or
    /// `serve.store.delta`, a panic, a failed save — aborts the delta:
    /// the old slot is restored and `fp` keeps serving exactly as if
    /// the delta was never attempted (counted as `serve.delta.abort`).
    ///
    /// # Errors
    /// [`ServeError::Prepare`] wrapping the underlying
    /// [`SparseError`]; [`ServeError::PoisonedPlan`] when the cached
    /// entry is poisoned.
    pub fn apply_delta(
        &self,
        fp: &MatrixFingerprint,
        added: &[(usize, usize, T)],
        removed: &[(usize, usize)],
    ) -> Result<Option<MatrixFingerprint>, ServeError> {
        let (slot, old_generation) = {
            let shard = lock_clean(self.shard_for(fp));
            match shard.entries.get(fp) {
                Some(entry) => (Arc::clone(&entry.slot), entry.generation),
                None => return Ok(None),
            }
        };
        self.telemetry.counter("serve.delta.attempt", 1);
        let old = match slot.claim_for_update() {
            Ok(engine) => engine,
            Err(e) => {
                self.telemetry.counter("serve.delta.abort", 1);
                return Err(e);
            }
        };
        let abort = |e: ServeError| -> ServeError {
            slot.fulfill(SlotState::Ready(Arc::clone(&old)));
            self.telemetry.counter("serve.delta.abort", 1);
            e
        };
        // The incremental re-prepare runs off every lock, inside a
        // panic boundary: a fault-injected panic (kernel.delta or
        // serve.cache.delta with a panic action) must degrade to the
        // old plan, never poison it — the pre-delta epoch is intact by
        // construction.
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Engine<T>, ServeError> {
            let engine = old
                .apply_delta(added, removed)
                .map_err(ServeError::Prepare)?;
            FAULT_SERVE_CACHE_DELTA
                .fire()
                .map_err(|e| ServeError::Prepare(SparseError::InvalidStructure(e.to_string())))?;
            Ok(engine)
        }));
        let new_engine = match outcome {
            Ok(Ok(engine)) => Arc::new(engine),
            Ok(Err(e)) => return Err(abort(e)),
            Err(_panic) => {
                return Err(abort(ServeError::Prepare(SparseError::InvalidStructure(
                    "structural delta panicked; pre-delta plan retained".into(),
                ))))
            }
        };
        let new_fp = MatrixFingerprint::of(&new_engine.source_matrix());
        if let Some(store) = &self.store {
            match store.save_delta(&new_fp, &new_engine) {
                Ok(_) => self.telemetry.counter("serve.store.save", 1),
                Err(e) => {
                    // unlike the write-through on a prepare, a failed
                    // delta save fails the delta: committing only in
                    // memory would leave a restart unable to recover
                    // the new epoch while the old file claims to be
                    // current
                    self.telemetry.counter("serve.store.save_error", 1);
                    return Err(abort(ServeError::Prepare(e)));
                }
            }
        }
        // commit: install the new epoch first, release the old slot
        // second — at no instant is neither fingerprint serveable
        {
            let tick = self.next_tick();
            let mut shard = lock_clean(self.shard_for(&new_fp));
            match shard.entries.get_mut(&new_fp) {
                Some(entry) => {
                    // the structure was independently cached (or a
                    // prior delta landed on the same structure): the
                    // delta's engine wins, waiters on an in-flight
                    // prepare are fulfilled with it
                    entry.generation = old_generation + 1;
                    entry.last_used = tick;
                    entry
                        .slot
                        .fulfill(SlotState::Ready(Arc::clone(&new_engine)));
                }
                None => {
                    self.evict_lru_if_full(&mut shard);
                    shard.entries.insert(
                        new_fp,
                        Entry {
                            slot: Arc::new(PlanSlot {
                                state: Mutex::new(SlotState::Ready(Arc::clone(&new_engine))),
                                ready: Condvar::new(),
                            }),
                            last_used: tick,
                            generation: old_generation + 1,
                        },
                    );
                    self.inserts.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.counter("serve.cache.insert", 1);
                }
            }
        }
        slot.fulfill(SlotState::Ready(old));
        self.telemetry.counter("serve.delta.commit", 1);
        Ok(Some(new_fp))
    }

    /// The generation of the entry cached under `fp`: `0` for a fresh
    /// prepare or warm load, `n+1` for a plan installed by
    /// [`PlanCache::apply_delta`] on a generation-`n` plan. `None`
    /// when nothing is cached under `fp`.
    pub fn generation(&self, fp: &MatrixFingerprint) -> Option<u64> {
        lock_clean(self.shard_for(fp))
            .entries
            .get(fp)
            .map(|e| e.generation)
    }

    /// Drops the entry for `fp` (the targeted recovery path for a
    /// poisoned or persistently failing plan). Returns whether an
    /// entry was removed.
    pub fn remove(&self, fp: &MatrixFingerprint) -> bool {
        let mut shard = lock_clean(self.shard_for(fp));
        shard.entries.remove(fp).is_some()
    }

    /// Sweeps every poisoned slot out of the cache, making their
    /// fingerprints preparable again without guessing which
    /// fingerprints to [`PlanCache::remove`]. Returns how many slots
    /// were cleared.
    pub fn clear_poisoned(&self) -> usize {
        let mut cleared = 0;
        for shard in &self.shards {
            let mut shard = lock_clean(shard);
            let poisoned: Vec<MatrixFingerprint> = shard
                .entries
                .iter()
                .filter(|(_, e)| matches!(&*lock_clean(&e.slot.state), SlotState::Poisoned))
                .map(|(fp, _)| *fp)
                .collect();
            for fp in poisoned {
                shard.entries.remove(&fp);
                cleared += 1;
            }
        }
        cleared
    }

    /// Evicts the shard's least-recently-used *settled* entries until
    /// an insert fits.
    ///
    /// In-flight (`Preparing`) slots are never evicted: dropping one
    /// hides the prepare from later lookups of the same fingerprint,
    /// which then also miss the store (the first write-through has not
    /// landed yet) and pay for a duplicate prepare — exactly the
    /// coalescing the slot exists to provide. Claimed (`Updating`)
    /// slots are likewise pinned: evicting one orphans the mutation's
    /// settle, silently discarding a refresh or a delta restore. If
    /// every resident slot is in flight the shard briefly overflows
    /// its capacity instead; the overflow is bounded by the number of
    /// concurrent preparers (worker count) and drains on the next
    /// settled insert.
    fn evict_lru_if_full(&self, shard: &mut Shard<T>) {
        while shard.entries.len() >= self.per_shard_capacity {
            let victim = shard
                .entries
                .iter()
                .filter(|(_, e)| {
                    !matches!(
                        &*lock_clean(&e.slot.state),
                        SlotState::Preparing | SlotState::Updating(_)
                    )
                })
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| *fp);
            match victim {
                Some(fp) => {
                    shard.entries.remove(&fp);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.counter("serve.cache.eviction", 1);
                }
                None => break,
            }
        }
    }

    /// Counts entries matching `pred` across all shards (shard lock →
    /// slot lock, the same order every reader takes).
    fn count_slots(&self, pred: impl Fn(&SlotState<T>) -> bool) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                lock_clean(shard)
                    .entries
                    .values()
                    .filter(|e| pred(&lock_clean(&e.slot.state)))
                    .count()
            })
            .sum()
    }

    /// Entries currently cached (sums the shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_clean(s).entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The effective total capacity bound (capacity rounded up to a
    /// multiple of the shard count).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fingerprints whose circuit breaker is currently open (readiness
    /// signal: structures that cannot be prepared right now).
    pub fn open_breakers(&self) -> usize {
        self.count_slots(|s| matches!(s, SlotState::Failed(fs) if fs.breaker == Breaker::Open))
    }

    /// Fingerprints currently quarantined as poisoned.
    pub fn poisoned_len(&self) -> usize {
        self.count_slots(|s| matches!(s, SlotState::Poisoned))
    }

    /// Snapshots the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            len: self.len(),
            poisoned: self.poisoned_len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_data::generators;
    use spmm_kernels::EngineConfig;
    use spmm_sparse::CsrMatrix;
    use std::sync::atomic::AtomicUsize;

    fn matrix(seed: u64) -> CsrMatrix<f64> {
        generators::uniform_random::<f64>(96, 96, 5, seed)
    }

    fn prepare(m: &CsrMatrix<f64>) -> Result<Engine<f64>, SparseError> {
        Engine::prepare(m, &EngineConfig::default())
    }

    fn single_shard(capacity: usize) -> PlanCache<f64> {
        PlanCache::new(
            PlanCacheConfig::builder()
                .capacity(capacity)
                .shards(1)
                .build(),
        )
    }

    fn injected() -> Result<Engine<f64>, SparseError> {
        Err(SparseError::InvalidStructure("injected".into()))
    }

    #[test]
    fn eviction_order_is_deterministic_lru() {
        let cache = single_shard(2);
        let (ma, mb, mc) = (matrix(1), matrix(2), matrix(3));
        let (fa, fb, fc) = (
            MatrixFingerprint::of(&ma),
            MatrixFingerprint::of(&mb),
            MatrixFingerprint::of(&mc),
        );
        cache.get_or_prepare(fa, || prepare(&ma)).unwrap();
        cache.get_or_prepare(fb, || prepare(&mb)).unwrap();
        // touch A so B becomes the LRU victim
        assert!(cache.try_get(&fa).is_some());
        cache.get_or_prepare(fc, || prepare(&mc)).unwrap();

        assert_eq!(cache.len(), 2);
        assert!(cache.try_get(&fa).is_some(), "A was recently used");
        assert!(cache.try_get(&fc).is_some(), "C was just inserted");
        assert!(cache.try_get(&fb).is_none(), "B was the LRU victim");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.inserts, 3);
        // every lookup above counted exactly once: 3 creating misses,
        // 3 try_get hits, 1 try_get miss (B after eviction)
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn thundering_herd_prepares_exactly_once() {
        let cache = Arc::new(single_shard(8));
        let m = Arc::new(matrix(7));
        let fp = MatrixFingerprint::of(&*m);
        let prepares = Arc::new(AtomicUsize::new(0));
        const HERD: usize = 8;

        std::thread::scope(|scope| {
            for _ in 0..HERD {
                let (cache, m, prepares) = (cache.clone(), m.clone(), prepares.clone());
                scope.spawn(move || {
                    let (engine, _) = cache
                        .get_or_prepare(fp, || {
                            prepares.fetch_add(1, Ordering::SeqCst);
                            prepare(&m)
                        })
                        .unwrap();
                    assert_eq!(engine.ncols(), m.ncols());
                });
            }
        });

        assert_eq!(prepares.load(Ordering::SeqCst), 1, "duplicated prepare");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, HERD as u64, "lost a lookup");
        assert_eq!(stats.misses, 1, "only the slot creator is a miss");
        assert_eq!(stats.inserts, 1);
    }

    #[test]
    fn in_flight_prepare_survives_eviction_pressure() {
        // A `Preparing` slot must never be the LRU victim: evicting it
        // hides the prepare from a concurrent lookup of the same
        // fingerprint, which then re-runs the pipeline (and, with a
        // store tier, double-saves the plan). The shard overflows its
        // capacity instead and drains once the slot settles.
        let cache = Arc::new(single_shard(1));
        let ma = Arc::new(matrix(11));
        let mb = matrix(12);
        let fa = MatrixFingerprint::of(&*ma);
        let prepares = Arc::new(AtomicUsize::new(0));
        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();

        let slow = {
            let (cache, ma, prepares) = (cache.clone(), ma.clone(), prepares.clone());
            std::thread::spawn(move || {
                cache
                    .get_or_prepare(fa, || {
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                        prepares.fetch_add(1, Ordering::SeqCst);
                        prepare(&ma)
                    })
                    .unwrap()
            })
        };
        entered_rx.recv().unwrap();

        // B lands in the full single-slot shard while A is in flight:
        // the insert must not evict A's preparing slot
        cache
            .get_or_prepare(MatrixFingerprint::of(&mb), || prepare(&mb))
            .unwrap();
        assert_eq!(cache.stats().evictions, 0, "in-flight A was evicted");
        assert_eq!(cache.len(), 2, "shard overflows instead of evicting");

        // a second lookup of A coalesces onto the surviving slot —
        // whether it arrives before or after the release, the prepare
        // closure below must never run
        let waiter = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                cache
                    .get_or_prepare(fa, || panic!("coalesced lookup re-ran the prepare"))
                    .unwrap()
            })
        };
        release_tx.send(()).unwrap();
        let (_, fresh) = slow.join().unwrap();
        assert!(fresh, "the slot creator pays for the prepare");
        let (_, fresh) = waiter.join().unwrap();
        assert!(!fresh, "the coalesced lookup shares the result");
        assert_eq!(prepares.load(Ordering::SeqCst), 1);

        // once A settles, the next insert evicts the settled overflow
        // back under the capacity bound
        let mc = matrix(13);
        cache
            .get_or_prepare(MatrixFingerprint::of(&mc), || prepare(&mc))
            .unwrap();
        assert_eq!(cache.len(), 1, "overflow drains once slots settle");
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn value_updates_keep_fingerprint_entry_and_counters() {
        let cache = single_shard(4);
        let m = matrix(11);
        let fp = MatrixFingerprint::of(&m);
        cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        let counters_before = (cache.stats().hits, cache.stats().misses);

        let new_values: Vec<f64> = (0..m.nnz()).map(|i| (i % 9) as f64 - 4.0).collect();
        let mut m2 = m.clone();
        m2.values_mut().copy_from_slice(&new_values);
        // same structure → same fingerprint → same entry
        assert_eq!(MatrixFingerprint::of(&m2), fp);
        assert!(cache.update_values(&fp, &new_values).unwrap());

        let engine = cache.try_get(&fp).expect("entry survives the refresh");
        let x = generators::random_dense::<f64>(m.ncols(), 4, 1);
        let expected = spmm_kernels::spmm::spmm_rowwise_seq(&m2, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);

        let stats = cache.stats();
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.evictions, 0, "refresh must not evict");
        assert_eq!(
            (counters_before.0 + 1, counters_before.1),
            (stats.hits, stats.misses),
            "only the try_get above may count"
        );
        // unknown fingerprint: a no-op, not an error
        let other = MatrixFingerprint::of(&matrix(99));
        assert!(!cache.update_values(&other, &new_values).unwrap());
    }

    #[test]
    fn failed_prepare_persists_backs_off_then_retries() {
        let (clock, driver) = ClockHandle::manual();
        let cache: PlanCache<f64> = PlanCache::new(
            PlanCacheConfig::builder()
                .capacity(4)
                .shards(1)
                .clock(clock)
                .build(),
        );
        let m = matrix(13);
        let fp = MatrixFingerprint::of(&m);
        let err = cache.get_or_prepare(fp, injected).unwrap_err();
        assert!(matches!(err, ServeError::Prepare(_)));
        assert_eq!(cache.len(), 1, "failed entries persist for backoff state");
        // inside the window the retry is suppressed without running prepare
        let err = cache
            .get_or_prepare(fp, || unreachable!("suppressed attempt ran prepare"))
            .unwrap_err();
        let ServeError::RetryBackoff { failures, retry_in } = err else {
            panic!("expected RetryBackoff, got {err:?}");
        };
        assert_eq!(failures, 1);
        assert!(retry_in > Duration::ZERO);
        // past the window the retry runs and succeeds
        driver.advance(retry_in);
        let (engine, fresh) = cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        assert!(fresh, "an admitted retry runs the prepare");
        assert_eq!(engine.ncols(), m.ncols());
        assert!(cache.try_get(&fp).is_some(), "recovered entry is cached");
    }

    #[test]
    fn backoff_windows_grow_exponentially_with_deterministic_jitter() {
        let windows = |seed: u64| -> Vec<Duration> {
            let (clock, driver) = ClockHandle::manual();
            let cache: PlanCache<f64> = PlanCache::new(
                PlanCacheConfig::builder()
                    .capacity(4)
                    .shards(1)
                    .breaker_threshold(u32::MAX)
                    .retry_jitter_seed(seed)
                    .clock(clock)
                    .build(),
            );
            let m = matrix(23);
            let fp = MatrixFingerprint::of(&m);
            (0..4)
                .map(|_| {
                    cache.get_or_prepare(fp, injected).unwrap_err();
                    let err = cache
                        .get_or_prepare(fp, || unreachable!("suppressed"))
                        .unwrap_err();
                    let ServeError::RetryBackoff { retry_in, .. } = err else {
                        panic!("expected RetryBackoff, got {err:?}");
                    };
                    driver.advance(retry_in);
                    retry_in
                })
                .collect()
        };
        let (a, b, c) = (windows(7), windows(7), windows(8));
        assert_eq!(a, b, "same seed ⇒ identical schedule");
        assert_ne!(a, c, "different seed ⇒ different jitter");
        for (i, w) in a.iter().enumerate() {
            // default base 10 ms doubles per failure, jitter ≤ 25 %
            let raw = Duration::from_millis(10) * (1 << i);
            assert!(*w >= raw && *w <= raw + raw / 4, "window {i}: {w:?}");
        }
    }

    #[test]
    fn breaker_opens_at_threshold_and_recovers_via_half_open_probe() {
        let cooldown = Duration::from_millis(250);
        let (clock, driver) = ClockHandle::manual();
        let cache: PlanCache<f64> = PlanCache::new(
            PlanCacheConfig::builder()
                .capacity(4)
                .shards(1)
                .breaker_threshold(3)
                .breaker_cooldown(cooldown)
                .clock(clock)
                .build(),
        );
        let m = matrix(19);
        let fp = MatrixFingerprint::of(&m);
        for attempt in 1..=3u32 {
            let err = cache.get_or_prepare(fp, injected).unwrap_err();
            assert!(matches!(err, ServeError::Prepare(_)), "attempt {attempt}");
            match cache
                .get_or_prepare(fp, || unreachable!("suppressed"))
                .unwrap_err()
            {
                ServeError::RetryBackoff { failures, retry_in } => {
                    assert!(attempt < 3, "backoff only below the threshold");
                    assert_eq!(failures, attempt);
                    driver.advance(retry_in);
                }
                ServeError::BreakerOpen { failures, retry_in } => {
                    assert_eq!(attempt, 3, "breaker opens exactly at the threshold");
                    assert_eq!(failures, 3);
                    assert_eq!(retry_in, cooldown, "cooldown is jitter-free");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(cache.open_breakers(), 1);
        // a half-open probe that fails re-opens for another cooldown
        driver.advance(cooldown);
        let err = cache.get_or_prepare(fp, injected).unwrap_err();
        assert!(matches!(err, ServeError::Prepare(_)), "probe is admitted");
        match cache
            .get_or_prepare(fp, || unreachable!("suppressed"))
            .unwrap_err()
        {
            ServeError::BreakerOpen { failures, retry_in } => {
                assert_eq!(failures, 4);
                assert_eq!(retry_in, cooldown);
            }
            other => panic!("failed probe must re-open, got {other:?}"),
        }
        // a half-open probe that succeeds closes the breaker
        driver.advance(cooldown);
        let (_, fresh) = cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        assert!(fresh, "the successful probe ran the prepare");
        assert_eq!(cache.open_breakers(), 0);
        assert!(cache.try_get(&fp).is_some(), "closed breaker serves hits");
    }

    #[test]
    fn panicked_prepare_poisons_deterministically_until_removed() {
        let cache = Arc::new(single_shard(4));
        let m = matrix(17);
        let fp = MatrixFingerprint::of(&m);
        let preparer = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let _ = cache.get_or_prepare(fp, || panic!("injected prepare panic"));
            })
        };
        assert!(preparer.join().is_err(), "panic must propagate");
        // every later lookup sees the poison, deterministically
        for _ in 0..3 {
            assert_eq!(
                cache.get_or_prepare(fp, || prepare(&m)).unwrap_err(),
                ServeError::PoisonedPlan
            );
            assert!(cache.try_get(&fp).is_none());
        }
        // explicit removal recovers the fingerprint
        assert!(cache.remove(&fp));
        let (_, fresh) = cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        assert!(fresh);
    }

    #[test]
    fn clear_poisoned_sweeps_only_poisoned_slots() {
        let cache = Arc::new(single_shard(4));
        let (ma, mb) = (matrix(31), matrix(32));
        let (fa, fb) = (MatrixFingerprint::of(&ma), MatrixFingerprint::of(&mb));
        cache.get_or_prepare(fa, || prepare(&ma)).unwrap();
        let poisoner = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let _ = cache.get_or_prepare(fb, || panic!("injected prepare panic"));
            })
        };
        assert!(poisoner.join().is_err());
        let stats = cache.stats();
        assert_eq!((stats.len, stats.poisoned), (2, 1));

        assert_eq!(cache.clear_poisoned(), 1);
        let stats = cache.stats();
        assert_eq!((stats.len, stats.poisoned), (1, 0));
        assert!(cache.try_get(&fa).is_some(), "healthy entries survive");
        let (_, fresh) = cache.get_or_prepare(fb, || prepare(&mb)).unwrap();
        assert!(fresh, "swept fingerprint is preparable again");
        assert_eq!(cache.clear_poisoned(), 0, "sweep is idempotent");
    }

    /// A column absent from `row` of `m` (for building valid deltas).
    fn absent_col(m: &CsrMatrix<f64>, row: usize) -> usize {
        (0..m.ncols() as u32)
            .rev()
            .find(|c| m.row_cols(row).binary_search(c).is_err())
            .unwrap() as usize
    }

    #[test]
    fn structural_delta_installs_new_epoch_and_keeps_old_serveable() {
        let _quiet = spmm_faults::quiesce();
        let cache = single_shard(8);
        let m = matrix(61);
        let fp = MatrixFingerprint::of(&m);
        cache.get_or_prepare(fp, || prepare(&m)).unwrap();

        let added = [(0usize, absent_col(&m, 0), 3.0f64)];
        let r = (0..m.nrows()).find(|&r| m.row_nnz(r) > 0).unwrap();
        let removed = [(r, m.row_cols(r)[0] as usize)];
        let new_fp = cache.apply_delta(&fp, &added, &removed).unwrap().unwrap();
        let patched = m.apply_structural_delta(&added, &removed).unwrap();
        assert_ne!(new_fp, fp, "a structural delta must move the key");
        assert_eq!(MatrixFingerprint::of(&patched), new_fp);

        // both epochs are serveable, each answering for its structure
        let old_engine = cache.try_get(&fp).expect("old epoch still cached");
        let new_engine = cache.try_get(&new_fp).expect("new epoch installed");
        let x = generators::random_dense::<f64>(m.ncols(), 4, 5);
        let e_old = spmm_kernels::spmm::spmm_rowwise_seq(&m, &x).unwrap();
        let e_new = spmm_kernels::spmm::spmm_rowwise_seq(&patched, &x).unwrap();
        assert!(e_old.max_abs_diff(&old_engine.spmm(&x).unwrap()) < 1e-10);
        assert!(e_new.max_abs_diff(&new_engine.spmm(&x).unwrap()) < 1e-10);

        // generations record the epoch lineage
        assert_eq!(cache.generation(&fp), Some(0));
        assert_eq!(cache.generation(&new_fp), Some(1));
        let third = [(1usize, absent_col(&patched, 1), -2.0f64)];
        let fp3 = cache.apply_delta(&new_fp, &third, &[]).unwrap().unwrap();
        assert_eq!(cache.generation(&fp3), Some(2));

        // unknown fingerprint: a no-op, not an error
        let other = MatrixFingerprint::of(&matrix(999));
        assert!(cache.apply_delta(&other, &added, &[]).unwrap().is_none());
    }

    #[test]
    fn failed_and_faulted_deltas_degrade_to_the_old_plan() {
        let tel = Arc::new(spmm_telemetry::Collector::new());
        let cache: PlanCache<f64> = PlanCache::new(
            PlanCacheConfig::builder()
                .capacity(8)
                .shards(1)
                .telemetry(TelemetryHandle::new(tel.clone()))
                .build(),
        );
        let m = matrix(67);
        let fp = MatrixFingerprint::of(&m);
        cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        let len_before = cache.len();
        let good_add = [(0usize, absent_col(&m, 0), 1.0f64)];

        // malformed delta: rejected up front with the structured error
        let err = cache.apply_delta(&fp, &[(9999, 0, 1.0)], &[]).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Prepare(SparseError::DeltaOutOfBounds { .. })
            ),
            "{err:?}"
        );

        // a delta killed at either in-process stage — start of the
        // incremental re-prepare, or post-build pre-commit — by either
        // an error or a panic, degrades to the old plan
        for spec in [
            "kernel.delta:error@1",
            "kernel.delta:panic@1",
            "serve.cache.delta:error@1",
            "serve.cache.delta:panic@1",
        ] {
            let guard = spmm_faults::FaultPlan::parse(spec, 7).unwrap().arm();
            let err = cache.apply_delta(&fp, &good_add, &[]).unwrap_err();
            assert!(matches!(err, ServeError::Prepare(_)), "{spec}: {err:?}");
            assert_eq!(guard.hits(spec.split(':').next().unwrap()), 1, "{spec}");
        }

        assert_eq!(cache.len(), len_before, "aborted deltas must not install");
        assert_eq!(cache.generation(&fp), Some(0));
        let engine = cache.try_get(&fp).expect("old plan still serves");
        let x = generators::random_dense::<f64>(m.ncols(), 4, 9);
        let expected = spmm_kernels::spmm::spmm_rowwise_seq(&m, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
        assert_eq!(tel.counter_value("serve.delta.attempt"), 5);
        assert_eq!(tel.counter_value("serve.delta.abort"), 5);
        assert_eq!(tel.counter_value("serve.delta.commit"), 0);
    }

    #[test]
    fn value_refresh_during_inflight_delta_cannot_resurrect_pre_delta_plan() {
        // Regression: update_values used to read the slot's engine
        // without claiming it, so a refresh landing while a structural
        // delta held the slot would be overwritten by the delta's
        // restore — the refresh reported Ok(true) yet the pre-delta
        // values came back. The claim (Ready → Updating) makes the
        // refresh wait for the delta to settle.
        let (clock, _driver) = ClockHandle::manual();
        let cache: PlanCache<f64> = PlanCache::new(
            PlanCacheConfig::builder()
                .capacity(4)
                .shards(1)
                .clock(clock)
                .build(),
        );
        let m = matrix(71);
        let fp = MatrixFingerprint::of(&m);
        cache.get_or_prepare(fp, || prepare(&m)).unwrap();

        // simulate the in-flight delta exactly as apply_delta does:
        // claim the slot, settle later
        let slot = {
            let shard = lock_clean(cache.shard_for(&fp));
            Arc::clone(&shard.entries.get(&fp).unwrap().slot)
        };
        let claimed = slot.claim_for_update().unwrap();

        let new_values: Vec<f64> = (0..m.nnz()).map(|i| (i % 7) as f64 - 3.0).collect();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let refreshed = cache.update_values(&fp, &new_values);
                done_tx.send(refreshed).unwrap();
            });
            // the refresh must block while the delta holds the claim
            assert!(
                done_rx.recv_timeout(Duration::from_millis(100)).is_err(),
                "refresh ran during an in-flight delta"
            );
            // readers are still served the pre-delta snapshot meanwhile
            assert!(cache.try_get(&fp).is_some(), "no eviction window");
            // the delta settles (its restore path)
            slot.fulfill(SlotState::Ready(claimed));
            let refreshed = done_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("refresh must resume once the delta settles");
            assert!(refreshed.unwrap(), "refresh applies after the delta");
        });

        // the refresh survives: the settled slot carries the new
        // values, not the pre-delta ones the old code resurrected
        let engine = cache.try_get(&fp).unwrap();
        let mut m2 = m.clone();
        m2.values_mut().copy_from_slice(&new_values);
        let x = generators::random_dense::<f64>(m.ncols(), 4, 13);
        let expected = spmm_kernels::spmm::spmm_rowwise_seq(&m2, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
    }

    #[test]
    fn delta_write_through_lands_before_commit_and_retains_old_file() {
        let _quiet = spmm_faults::quiesce();
        let dir = temp_store_dir("delta");
        let m = matrix(73);
        let fp = MatrixFingerprint::of(&m);
        let tel = Arc::new(spmm_telemetry::Collector::new());
        let cache = with_store(&dir, TelemetryHandle::new(tel.clone()));
        cache.get_or_prepare(fp, || prepare(&m)).unwrap();

        let added = [(0usize, absent_col(&m, 0), 2.0f64)];
        let new_fp = cache.apply_delta(&fp, &added, &[]).unwrap().unwrap();
        let store = PlanStore::open(&dir).unwrap();
        assert!(store.verify::<f64>(&fp).unwrap(), "old epoch file retained");
        assert!(store.verify::<f64>(&new_fp).unwrap(), "new epoch persisted");

        // a restart warm-loads the delta'd epoch from disk
        let cache_b = with_store(&dir, TelemetryHandle::default());
        let (engine, fresh) = cache_b
            .get_or_prepare(new_fp, || unreachable!("store hit must skip prepare"))
            .unwrap();
        assert!(!fresh);
        let patched = m.apply_structural_delta(&added, &[]).unwrap();
        let x = generators::random_dense::<f64>(m.ncols(), 4, 17);
        let expected = spmm_kernels::spmm::spmm_rowwise_seq(&patched, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulted_delta_save_aborts_without_touching_either_tier() {
        let dir = temp_store_dir("delta-fault");
        let m = matrix(79);
        let fp = MatrixFingerprint::of(&m);
        let tel = Arc::new(spmm_telemetry::Collector::new());
        let cache = with_store(&dir, TelemetryHandle::new(tel.clone()));
        {
            let _quiet = spmm_faults::quiesce();
            cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        }

        let added = [(0usize, absent_col(&m, 0), 2.0f64)];
        let guard = spmm_faults::FaultPlan::parse("serve.store.delta:error@1", 7)
            .unwrap()
            .arm();
        let err = cache.apply_delta(&fp, &added, &[]).unwrap_err();
        assert!(matches!(err, ServeError::Prepare(_)), "{err:?}");
        assert_eq!(guard.hits("serve.store.delta"), 1);
        drop(guard);

        // no new epoch anywhere: cache still has exactly the old entry,
        // store still has exactly the old file
        assert_eq!(cache.len(), 1);
        assert!(cache.try_get(&fp).is_some(), "old plan still serves");
        let store = PlanStore::open(&dir).unwrap();
        let plans = store.list().unwrap();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].fingerprint, fp);
        assert_eq!(tel.counter_value("serve.delta.abort"), 1);
        assert_eq!(tel.counter_value("serve.store.save_error"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "spmm-cache-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn with_store(dir: &std::path::Path, telemetry: TelemetryHandle) -> PlanCache<f64> {
        PlanCache::new(
            PlanCacheConfig::builder()
                .capacity(4)
                .shards(1)
                .telemetry(telemetry)
                .store(Arc::new(PlanStore::open(dir).unwrap()))
                .build(),
        )
    }

    #[test]
    fn store_tier_write_through_then_read_through() {
        let dir = temp_store_dir("rt");
        let m = matrix(41);
        let fp = MatrixFingerprint::of(&m);

        // first process: a cold miss prepares live and persists
        let writer_tel = Arc::new(spmm_telemetry::Collector::new());
        let cache_a = with_store(&dir, TelemetryHandle::new(writer_tel.clone()));
        let (live, fresh) = cache_a.get_or_prepare(fp, || prepare(&m)).unwrap();
        assert!(fresh, "cold miss with an empty store runs prepare");
        assert_eq!(writer_tel.counter_value("serve.store.miss"), 1);
        assert_eq!(writer_tel.counter_value("serve.store.save"), 1);

        // second process: the store satisfies the miss without a prepare
        let reader_tel = Arc::new(spmm_telemetry::Collector::new());
        let cache_b = with_store(&dir, TelemetryHandle::new(reader_tel.clone()));
        let (stored, fresh) = cache_b
            .get_or_prepare(fp, || unreachable!("store hit must skip prepare"))
            .unwrap();
        assert!(!fresh, "a store hit is not a fresh prepare");
        assert_eq!(reader_tel.counter_value("serve.store.hit"), 1);
        assert_eq!(reader_tel.counter_value("serve.store.save"), 0);

        let x = generators::random_dense::<f64>(m.ncols(), 5, 9);
        assert_eq!(
            live.spmm(&x).unwrap().data(),
            stored.spmm(&x).unwrap().data(),
            "stored plan must be bit-identical to the live one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_store_file_degrades_to_live_prepare() {
        let dir = temp_store_dir("corrupt");
        let m = matrix(43);
        let fp = MatrixFingerprint::of(&m);
        let seed_cache = with_store(&dir, TelemetryHandle::default());
        seed_cache.get_or_prepare(fp, || prepare(&m)).unwrap();

        // flip a byte in the middle of the stored file
        let store = PlanStore::open(&dir).unwrap();
        let path = store.path_for::<f64>(&fp);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let tel = Arc::new(spmm_telemetry::Collector::new());
        let cache = with_store(&dir, TelemetryHandle::new(tel.clone()));
        let (engine, fresh) = cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        assert!(fresh, "a rejected file degrades to the live prepare");
        assert_eq!(tel.counter_value("serve.store.reject"), 1);
        assert_eq!(
            tel.counter_value("serve.store.save"),
            1,
            "the live prepare re-persists a good file over the bad one"
        );

        let x = generators::random_dense::<f64>(m.ncols(), 3, 2);
        let expected = spmm_kernels::spmm::spmm_rowwise_seq(&m, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_ready_seeds_without_counting_lookups() {
        let cache = single_shard(4);
        let m = matrix(47);
        let fp = MatrixFingerprint::of(&m);
        let engine = Arc::new(prepare(&m).unwrap());
        assert!(cache.insert_ready(fp, Arc::clone(&engine)));
        assert!(!cache.insert_ready(fp, engine), "existing entry untouched");
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 0),
            "seeding is not a lookup"
        );
        assert_eq!(stats.inserts, 1, "duplicate seed does not double-count");
        // the seeded plan serves hits without a prepare
        let (served, fresh) = cache
            .get_or_prepare(fp, || unreachable!("seeded entry must hit"))
            .unwrap();
        assert!(!fresh);
        assert_eq!(served.ncols(), m.ncols());
    }

    #[test]
    fn counters_are_exact_under_concurrency() {
        let cache = Arc::new(PlanCache::new(
            PlanCacheConfig::builder().capacity(16).shards(4).build(),
        ));
        let matrices: Vec<Arc<CsrMatrix<f64>>> =
            (0..6).map(|i| Arc::new(matrix(100 + i))).collect();
        const THREADS: usize = 8;
        const LOOKUPS: usize = 20;

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = cache.clone();
                let matrices = matrices.clone();
                scope.spawn(move || {
                    for i in 0..LOOKUPS {
                        let m = &matrices[(t + i) % matrices.len()];
                        let fp = MatrixFingerprint::of(&**m);
                        cache.get_or_prepare(fp, || prepare(m)).unwrap();
                    }
                });
            }
        });

        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            (THREADS * LOOKUPS) as u64,
            "every lookup counts exactly once"
        );
        assert_eq!(stats.misses, stats.inserts, "miss ⇔ slot created");
        assert!(stats.len <= stats.capacity);
    }
}
