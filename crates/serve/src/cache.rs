//! Sharded, capacity-bounded LRU cache of prepared plans.
//!
//! The cache maps a [`MatrixFingerprint`] to an `Arc<Engine<T>>` — one
//! paid-for run of the Fig 5 preprocessing pipeline, shared by every
//! request on the same sparsity structure. Three properties carry the
//! serving layer:
//!
//! * **Coalesced preparation.** A fingerprint's slot is inserted
//!   atomically under its shard lock, so under a thundering herd
//!   exactly one caller runs `Engine::prepare`; the rest block on the
//!   slot's condvar and share the result.
//! * **Bounded capacity.** Each shard holds at most
//!   `ceil(capacity / shards)` entries; inserting into a full shard
//!   evicts the shard's least-recently-used entry. With `shards = 1`
//!   the eviction order is the exact global LRU order, which the tests
//!   pin down.
//! * **Exact counters.** Every lookup increments exactly one of
//!   hit/miss (hit: an entry existed; miss: this call created it or
//!   found nothing usable), under the shard lock's serialization — the
//!   `serve.cache.*` telemetry counters in the run manifest agree with
//!   [`CacheStats`] under any interleaving.
//!
//! A prepare that *panics* poisons its slot: later lookups report
//! [`ServeError::PoisonedPlan`] deterministically until the entry is
//! evicted or [`PlanCache::remove`]d. A prepare that returns an error
//! is propagated once and the entry removed, so a later caller retries.

use crate::error::ServeError;
use crate::fingerprint::MatrixFingerprint;
use spmm_kernels::Engine;
use spmm_sparse::{Scalar, SparseError};
use spmm_telemetry::TelemetryHandle;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Construction options for [`PlanCache`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PlanCacheConfig {
    /// Total capacity bound across all shards (at least 1 per shard is
    /// enforced). Default 32.
    pub capacity: usize,
    /// Number of independently locked shards. More shards cut
    /// contention; `1` makes the LRU eviction order globally exact.
    /// Default 8.
    pub shards: usize,
    /// Sink for the `serve.cache.{hit,miss,eviction,insert,refresh}`
    /// counters. Disabled by default.
    pub telemetry: TelemetryHandle,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            capacity: 32,
            shards: 8,
            telemetry: TelemetryHandle::default(),
        }
    }
}

impl PlanCacheConfig {
    /// Starts a builder initialised with the defaults.
    pub fn builder() -> PlanCacheConfigBuilder {
        PlanCacheConfigBuilder::default()
    }
}

/// Builder for [`PlanCacheConfig`].
#[derive(Debug, Clone, Default)]
pub struct PlanCacheConfigBuilder {
    config: PlanCacheConfig,
}

impl PlanCacheConfigBuilder {
    /// Sets the total capacity bound.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.config.capacity = capacity;
        self
    }

    /// Sets the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the telemetry sink.
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> PlanCacheConfig {
        self.config
    }
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry (ready or in flight).
    pub hits: u64,
    /// Lookups that found nothing usable (and possibly started a
    /// prepare).
    pub misses: u64,
    /// Entries dropped to make room at capacity.
    pub evictions: u64,
    /// Slots created (each corresponds to one prepare attempt).
    pub inserts: u64,
    /// In-place value refreshes via [`PlanCache::update_values`].
    pub refreshes: u64,
    /// Entries currently cached.
    pub len: usize,
    /// The configured total capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// State of one fingerprint's slot.
#[derive(Debug)]
enum SlotState<T> {
    /// A caller is running `Engine::prepare`; wait on the condvar.
    Preparing,
    /// The shared, ready-to-execute plan.
    Ready(Arc<Engine<T>>),
    /// The prepare returned an error (propagated once; the entry is
    /// removed so the next caller retries).
    Failed(SparseError),
    /// The prepare panicked.
    Poisoned,
}

#[derive(Debug)]
struct PlanSlot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

impl<T: Scalar> PlanSlot<T> {
    fn preparing() -> Self {
        PlanSlot {
            state: Mutex::new(SlotState::Preparing),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, new: SlotState<T>) {
        *self.state.lock().expect("plan slot lock") = new;
        self.ready.notify_all();
    }

    /// Blocks until the slot leaves `Preparing`.
    fn wait(&self) -> Result<Arc<Engine<T>>, ServeError> {
        let mut state = self.state.lock().expect("plan slot lock");
        loop {
            match &*state {
                SlotState::Preparing => state = self.ready.wait(state).expect("plan slot lock"),
                SlotState::Ready(engine) => return Ok(Arc::clone(engine)),
                SlotState::Failed(e) => return Err(ServeError::Prepare(e.clone())),
                SlotState::Poisoned => return Err(ServeError::PoisonedPlan),
            }
        }
    }
}

#[derive(Debug)]
struct Entry<T> {
    slot: Arc<PlanSlot<T>>,
    /// Global tick of the last lookup that touched this entry.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard<T> {
    entries: HashMap<MatrixFingerprint, Entry<T>>,
}

/// Sharded LRU cache of fingerprint → prepared plan (see the module
/// docs for the concurrency contract).
#[derive(Debug)]
pub struct PlanCache<T> {
    shards: Vec<Mutex<Shard<T>>>,
    per_shard_capacity: usize,
    capacity: usize,
    telemetry: TelemetryHandle,
    /// Monotonic lookup clock driving LRU recency.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    refreshes: AtomicU64,
}

impl<T: Scalar> PlanCache<T> {
    /// An empty cache with the given configuration.
    pub fn new(config: PlanCacheConfig) -> Self {
        let shards = config.shards.max(1);
        let per_shard_capacity = config.capacity.max(1).div_ceil(shards);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            capacity: per_shard_capacity * shards,
            telemetry: config.telemetry,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, fp: &MatrixFingerprint) -> &Mutex<Shard<T>> {
        // the FNV hash is well mixed; the low bits pick the shard
        &self.shards[(fp.hash() as usize) % self.shards.len()]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.cache.hit", 1);
    }

    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.cache.miss", 1);
    }

    /// Non-blocking lookup: `Some` iff a fully prepared plan is cached
    /// (bumping its recency and counting a hit); counts a miss
    /// otherwise. This is the deadline-pressured path — a caller that
    /// would fall back rather than wait for an in-flight prepare.
    pub fn try_get(&self, fp: &MatrixFingerprint) -> Option<Arc<Engine<T>>> {
        let tick = self.next_tick();
        let mut shard = self.shard_for(fp).lock().expect("plan cache shard");
        if let Some(entry) = shard.entries.get_mut(fp) {
            let ready = {
                let state = entry.slot.state.lock().expect("plan slot lock");
                match &*state {
                    SlotState::Ready(engine) => Some(Arc::clone(engine)),
                    _ => None,
                }
            };
            if let Some(engine) = ready {
                entry.last_used = tick;
                drop(shard);
                self.count_hit();
                return Some(engine);
            }
        }
        drop(shard);
        self.count_miss();
        None
    }

    /// The coalescing lookup: returns the cached plan for `fp`,
    /// preparing it with `prepare` if absent. Returns the engine plus
    /// `true` when *this call* ran the prepare (a cold miss), `false`
    /// when the plan was already cached or in flight.
    ///
    /// Concurrent calls on the same fingerprint run `prepare` exactly
    /// once; the others block until it resolves. `prepare` runs
    /// *outside* the shard lock, so unrelated fingerprints are never
    /// blocked behind a slow preprocessing run.
    ///
    /// # Errors
    /// [`ServeError::Prepare`] when `prepare` fails (the entry is
    /// removed, so a later call retries); [`ServeError::PoisonedPlan`]
    /// when a previous `prepare` for this fingerprint panicked and the
    /// poisoned entry is still cached.
    ///
    /// # Panics
    /// Re-raises `prepare`'s panic in the preparing caller after
    /// poisoning the slot.
    pub fn get_or_prepare(
        &self,
        fp: MatrixFingerprint,
        prepare: impl FnOnce() -> Result<Engine<T>, SparseError>,
    ) -> Result<(Arc<Engine<T>>, bool), ServeError> {
        let tick = self.next_tick();
        let (slot, created) = {
            let mut shard = self.shard_for(&fp).lock().expect("plan cache shard");
            match shard.entries.get_mut(&fp) {
                Some(entry) => {
                    entry.last_used = tick;
                    (Arc::clone(&entry.slot), false)
                }
                None => {
                    self.evict_lru_if_full(&mut shard);
                    let slot = Arc::new(PlanSlot::preparing());
                    shard.entries.insert(
                        fp,
                        Entry {
                            slot: Arc::clone(&slot),
                            last_used: tick,
                        },
                    );
                    (slot, true)
                }
            }
        };
        if !created {
            self.count_hit();
            return slot.wait().map(|engine| (engine, false));
        }
        self.count_miss();
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.cache.insert", 1);
        match catch_unwind(AssertUnwindSafe(prepare)) {
            Ok(Ok(engine)) => {
                let engine = Arc::new(engine);
                slot.fulfill(SlotState::Ready(Arc::clone(&engine)));
                Ok((engine, true))
            }
            Ok(Err(e)) => {
                slot.fulfill(SlotState::Failed(e.clone()));
                self.remove_if_same_slot(&fp, &slot);
                Err(ServeError::Prepare(e))
            }
            Err(panic) => {
                slot.fulfill(SlotState::Poisoned);
                resume_unwind(panic)
            }
        }
    }

    /// Refreshes the cached plan for `fp` in place with new values
    /// (original nonzero order). The fingerprint covers structure
    /// only, so the entry, its LRU position and the hit/miss counters
    /// are untouched — in-flight requests keep executing their
    /// consistent snapshot while new lookups see the new values.
    /// Returns `Ok(false)` when nothing is cached under `fp`.
    ///
    /// # Errors
    /// [`ServeError::Prepare`] on a value-length mismatch, plus
    /// whatever an in-flight prepare for this fingerprint resolves to.
    pub fn update_values(&self, fp: &MatrixFingerprint, values: &[T]) -> Result<bool, ServeError> {
        let slot = {
            let shard = self.shard_for(fp).lock().expect("plan cache shard");
            match shard.entries.get(fp) {
                Some(entry) => Arc::clone(&entry.slot),
                None => return Ok(false),
            }
        };
        let current = slot.wait()?;
        let refreshed = current
            .with_updated_values(values)
            .map_err(ServeError::Prepare)?;
        slot.fulfill(SlotState::Ready(Arc::new(refreshed)));
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        self.telemetry.counter("serve.cache.refresh", 1);
        Ok(true)
    }

    /// Drops the entry for `fp` (the recovery path for a poisoned
    /// plan). Returns whether an entry was removed.
    pub fn remove(&self, fp: &MatrixFingerprint) -> bool {
        let mut shard = self.shard_for(fp).lock().expect("plan cache shard");
        shard.entries.remove(fp).is_some()
    }

    /// Removes `fp` only if it still holds `slot` — a newer slot
    /// inserted after an eviction must not be collateral damage.
    fn remove_if_same_slot(&self, fp: &MatrixFingerprint, slot: &Arc<PlanSlot<T>>) {
        let mut shard = self.shard_for(fp).lock().expect("plan cache shard");
        if shard
            .entries
            .get(fp)
            .is_some_and(|e| Arc::ptr_eq(&e.slot, slot))
        {
            shard.entries.remove(fp);
        }
    }

    /// Evicts the shard's least-recently-used entries until an insert
    /// fits. Waiters on an evicted in-flight slot are unaffected: they
    /// hold the slot `Arc` and the preparer still fulfills it — the
    /// result just isn't cached.
    fn evict_lru_if_full(&self, shard: &mut Shard<T>) {
        while shard.entries.len() >= self.per_shard_capacity {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| *fp);
            match victim {
                Some(fp) => {
                    shard.entries.remove(&fp);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    self.telemetry.counter("serve.cache.eviction", 1);
                }
                None => break,
            }
        }
    }

    /// Entries currently cached (sums the shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache shard").entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The effective total capacity bound (capacity rounded up to a
    /// multiple of the shard count).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshots the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_data::generators;
    use spmm_kernels::EngineConfig;
    use spmm_sparse::CsrMatrix;
    use std::sync::atomic::AtomicUsize;

    fn matrix(seed: u64) -> CsrMatrix<f64> {
        generators::uniform_random::<f64>(96, 96, 5, seed)
    }

    fn prepare(m: &CsrMatrix<f64>) -> Result<Engine<f64>, SparseError> {
        Engine::prepare(m, &EngineConfig::default())
    }

    fn single_shard(capacity: usize) -> PlanCache<f64> {
        PlanCache::new(
            PlanCacheConfig::builder()
                .capacity(capacity)
                .shards(1)
                .build(),
        )
    }

    #[test]
    fn eviction_order_is_deterministic_lru() {
        let cache = single_shard(2);
        let (ma, mb, mc) = (matrix(1), matrix(2), matrix(3));
        let (fa, fb, fc) = (
            MatrixFingerprint::of(&ma),
            MatrixFingerprint::of(&mb),
            MatrixFingerprint::of(&mc),
        );
        cache.get_or_prepare(fa, || prepare(&ma)).unwrap();
        cache.get_or_prepare(fb, || prepare(&mb)).unwrap();
        // touch A so B becomes the LRU victim
        assert!(cache.try_get(&fa).is_some());
        cache.get_or_prepare(fc, || prepare(&mc)).unwrap();

        assert_eq!(cache.len(), 2);
        assert!(cache.try_get(&fa).is_some(), "A was recently used");
        assert!(cache.try_get(&fc).is_some(), "C was just inserted");
        assert!(cache.try_get(&fb).is_none(), "B was the LRU victim");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.inserts, 3);
        // every lookup above counted exactly once: 3 creating misses,
        // 3 try_get hits, 1 try_get miss (B after eviction)
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn thundering_herd_prepares_exactly_once() {
        let cache = Arc::new(single_shard(8));
        let m = Arc::new(matrix(7));
        let fp = MatrixFingerprint::of(&*m);
        let prepares = Arc::new(AtomicUsize::new(0));
        const HERD: usize = 8;

        std::thread::scope(|scope| {
            for _ in 0..HERD {
                let (cache, m, prepares) = (cache.clone(), m.clone(), prepares.clone());
                scope.spawn(move || {
                    let (engine, _) = cache
                        .get_or_prepare(fp, || {
                            prepares.fetch_add(1, Ordering::SeqCst);
                            prepare(&m)
                        })
                        .unwrap();
                    assert_eq!(engine.ncols(), m.ncols());
                });
            }
        });

        assert_eq!(prepares.load(Ordering::SeqCst), 1, "duplicated prepare");
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, HERD as u64, "lost a lookup");
        assert_eq!(stats.misses, 1, "only the slot creator is a miss");
        assert_eq!(stats.inserts, 1);
    }

    #[test]
    fn value_updates_keep_fingerprint_entry_and_counters() {
        let cache = single_shard(4);
        let m = matrix(11);
        let fp = MatrixFingerprint::of(&m);
        cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        let counters_before = (cache.stats().hits, cache.stats().misses);

        let new_values: Vec<f64> = (0..m.nnz()).map(|i| (i % 9) as f64 - 4.0).collect();
        let mut m2 = m.clone();
        m2.values_mut().copy_from_slice(&new_values);
        // same structure → same fingerprint → same entry
        assert_eq!(MatrixFingerprint::of(&m2), fp);
        assert!(cache.update_values(&fp, &new_values).unwrap());

        let engine = cache.try_get(&fp).expect("entry survives the refresh");
        let x = generators::random_dense::<f64>(m.ncols(), 4, 1);
        let expected = spmm_kernels::spmm::spmm_rowwise_seq(&m2, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);

        let stats = cache.stats();
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.evictions, 0, "refresh must not evict");
        assert_eq!(
            (counters_before.0 + 1, counters_before.1),
            (stats.hits, stats.misses),
            "only the try_get above may count"
        );
        // unknown fingerprint: a no-op, not an error
        let other = MatrixFingerprint::of(&matrix(99));
        assert!(!cache.update_values(&other, &new_values).unwrap());
    }

    #[test]
    fn failed_prepare_is_reported_once_then_retried() {
        let cache = single_shard(4);
        let m = matrix(13);
        let fp = MatrixFingerprint::of(&m);
        let err = cache
            .get_or_prepare(fp, || Err(SparseError::InvalidStructure("injected".into())))
            .unwrap_err();
        assert!(matches!(err, ServeError::Prepare(_)));
        assert_eq!(cache.len(), 0, "failed entries must not linger");
        // the retry succeeds
        let (engine, fresh) = cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        assert!(fresh);
        assert_eq!(engine.ncols(), m.ncols());
    }

    #[test]
    fn panicked_prepare_poisons_deterministically_until_removed() {
        let cache = Arc::new(single_shard(4));
        let m = matrix(17);
        let fp = MatrixFingerprint::of(&m);
        let preparer = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let _ = cache.get_or_prepare(fp, || panic!("injected prepare panic"));
            })
        };
        assert!(preparer.join().is_err(), "panic must propagate");
        // every later lookup sees the poison, deterministically
        for _ in 0..3 {
            assert_eq!(
                cache.get_or_prepare(fp, || prepare(&m)).unwrap_err(),
                ServeError::PoisonedPlan
            );
            assert!(cache.try_get(&fp).is_none());
        }
        // explicit removal recovers the fingerprint
        assert!(cache.remove(&fp));
        let (_, fresh) = cache.get_or_prepare(fp, || prepare(&m)).unwrap();
        assert!(fresh);
    }

    #[test]
    fn counters_are_exact_under_concurrency() {
        let cache = Arc::new(PlanCache::new(
            PlanCacheConfig::builder().capacity(16).shards(4).build(),
        ));
        let matrices: Vec<Arc<CsrMatrix<f64>>> =
            (0..6).map(|i| Arc::new(matrix(100 + i))).collect();
        const THREADS: usize = 8;
        const LOOKUPS: usize = 20;

        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = cache.clone();
                let matrices = matrices.clone();
                scope.spawn(move || {
                    for i in 0..LOOKUPS {
                        let m = &matrices[(t + i) % matrices.len()];
                        let fp = MatrixFingerprint::of(&**m);
                        cache.get_or_prepare(fp, || prepare(m)).unwrap();
                    }
                });
            }
        });

        let stats = cache.stats();
        assert_eq!(
            stats.hits + stats.misses,
            (THREADS * LOOKUPS) as u64,
            "every lookup counts exactly once"
        );
        assert_eq!(stats.misses, stats.inserts, "miss ⇔ slot created");
        assert!(stats.len <= stats.capacity);
    }
}
