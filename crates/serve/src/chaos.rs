//! The `chaos-bench` driver: concurrent Zipf traffic through the
//! serving engine under a scripted, seeded fault schedule.
//!
//! Where `serve-bench` measures the happy path, this driver proves the
//! resilience contracts hold *under injected failure*:
//!
//! * **Exactness under chaos.** Every operand is quantised to small
//!   integer values, so every partial sum in SpMM, SpMV, SDDMM and
//!   SpGEMM is exactly representable in `f64` and addition is
//!   associative — the tiled kernels, the row-wise/Gustavson fallbacks
//!   and the sequential references must agree **bit for bit**,
//!   whatever path a faulted run degrades a request onto. The traffic
//!   mixes all four kernel families; every successful response is
//!   checked against its precomputed reference; `exact == ok` is the
//!   headline invariant.
//! * **No lost answers.** Every submitted request resolves to a
//!   response or an error — injected panics surface as
//!   [`ServeError::WorkerPanicked`] or quarantine-fallback servings,
//!   never hangs.
//! * **Accounted degradation.** The report carries the engine's
//!   [`HealthSnapshot`], the `serve.breaker.*` / `serve.retry.*` /
//!   `serve.quarantined` counters in the manifest, and the per-point
//!   fault hit counts, so a fixed seed reproduces the same schedule.
//!
//! The fault spec grammar is [`FaultPlan::parse`]'s:
//! `point:action@hits[,…]` with action `error` | `panic` |
//! `delay:<ms>ms` and hits `N` | `every:N` | `N..M` | `*`.

use crate::batch::BatchConfig;
use crate::bench::zipf_schedule;
use crate::cache::CacheStats;
use crate::engine::{HealthSnapshot, Request, ServeConfig, ServeEngine, ServeStats};
use crate::error::ServeError;
use crate::fingerprint::MatrixFingerprint;
use crate::router::{RouterConfig, ShardRouter};
use crate::store::PlanStore;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spmm_data::generators;
use spmm_faults::FaultPlan;
use spmm_kernels::{sddmm, spgemm, spmm, spmv, Engine, EngineConfig, Output};
use spmm_sparse::{CsrMatrix, DenseMatrix, SparseError};
use spmm_telemetry::RunManifest;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload knobs for [`run_chaos_bench`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ChaosBenchConfig {
    /// Total requests in the stream. Default 192.
    pub requests: usize,
    /// Closed-loop client threads. Default 4.
    pub concurrency: usize,
    /// Serving worker threads. Default 4.
    pub workers: usize,
    /// Plan-cache capacity. Default 8.
    pub cache_capacity: usize,
    /// Admission queue bound. Default 256.
    pub queue_capacity: usize,
    /// Zipf skew exponent. Default 1.1.
    pub zipf_s: f64,
    /// Seed for the corpus, the schedule, the fault plan's jitter and
    /// the cache's backoff jitter. Default 42.
    pub seed: u64,
    /// Dense-operand width `k`. Default 16.
    pub k: usize,
    /// Scripted fault schedule in [`FaultPlan::parse`] grammar; `None`
    /// runs clean (nothing is armed, zero overhead).
    pub faults: Option<String>,
    /// Multi-RHS batching for the serving engine: fused passes must
    /// stay bit-exact under the same fault schedule. Default: disabled.
    pub batch: Option<BatchConfig>,
    /// Persistent plan-store directory for the serving engine, so the
    /// schedule can target `serve.store.load` / `serve.store.save` and
    /// prove a failing disk tier degrades to live preparation without
    /// losing exactness. Default: no store.
    pub plan_store: Option<PathBuf>,
    /// Engines behind the [`ShardRouter`]. At `1` (the default) the
    /// stream drives a single [`ServeEngine`] exactly as before; above
    /// it the same Zipf traffic and fault schedule flow through
    /// rendezvous routing, and the exactness bar is unchanged — every
    /// success must stay bit-equal whichever shard served it.
    pub shards: usize,
    /// Live structural deltas: a mutator thread chains
    /// [`apply_delta`](crate::PlanCache::apply_delta) epochs over the
    /// hottest corpus structure *while* the client stream runs. Every
    /// client checks against the reference of the epoch it actually
    /// sent, so the swap must never serve a mixed or partial plan; the
    /// fault schedule can target `kernel.delta`, `serve.cache.delta`
    /// and `serve.store.delta` to kill a delta mid-flight, and a
    /// failed delta must leave the old epoch fully serveable. Default:
    /// disabled.
    pub deltas: bool,
}

impl Default for ChaosBenchConfig {
    fn default() -> Self {
        ChaosBenchConfig {
            requests: 192,
            concurrency: 4,
            workers: 4,
            cache_capacity: 8,
            queue_capacity: 256,
            zipf_s: 1.1,
            seed: 42,
            k: 16,
            faults: None,
            batch: None,
            plan_store: None,
            shards: 1,
            deltas: false,
        }
    }
}

/// What [`run_chaos_bench`] observed.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ChaosBenchReport {
    /// The configuration the run used.
    pub config: ChaosBenchConfig,
    /// Distinct matrix structures in the corpus.
    pub corpus_size: usize,
    /// Wall-clock duration of the request stream.
    pub wall: Duration,
    /// Requests that resolved successfully.
    pub ok: usize,
    /// Requests that resolved to an error (injected or real).
    pub failed: usize,
    /// Successful responses whose output was **bit-equal** to the
    /// sequential row-wise reference. The contract is `exact == ok`.
    pub exact: usize,
    /// Times each armed fault point fired (empty on a clean run).
    pub fault_hits: BTreeMap<String, u64>,
    /// Serving counters at the end of the run.
    pub stats: ServeStats,
    /// Plan-cache counters at the end of the run.
    pub cache: CacheStats,
    /// The engine's final health snapshot.
    pub health: HealthSnapshot,
    /// The run manifest, `serve.breaker.*` / `serve.retry.*` /
    /// `serve.quarantined` counters included.
    pub manifest: RunManifest,
    /// Structural-delta epochs the mutator committed during the stream
    /// (`0` unless [`ChaosBenchConfig::deltas`] is on).
    pub deltas_committed: usize,
    /// Delta attempts that resolved to an error — injected faults
    /// included. Each must have left the old epoch serveable, which the
    /// concurrent clients verify bit-for-bit.
    pub deltas_failed: usize,
    /// Post-stream verdict on the final committed epoch: its
    /// chained-incremental plan served all four kernel families
    /// bit-equal to the sequential references **and** to a from-scratch
    /// `Engine::prepare` over the same structure. `None` when
    /// `deltas` is off.
    pub final_epoch_exact: Option<bool>,
}

impl ChaosBenchReport {
    /// The headline contract: every response the engine called
    /// successful was bit-equal to the reference, and every request
    /// was answered. Under `--deltas` the final committed epoch must
    /// additionally match a from-scratch prepare bit-for-bit.
    pub fn all_successes_exact(&self) -> bool {
        self.exact == self.ok
            && self.ok + self.failed == self.config.requests
            && self.final_epoch_exact != Some(false)
    }

    /// Renders the human-readable summary the CLI prints.
    pub fn render(&self) -> String {
        let c = &self.config;
        let s = &self.stats;
        let mut out = String::new();
        out.push_str(&format!(
            "chaos-bench: {} requests over {} matrices, {} clients, {} workers, seed {}\n",
            c.requests, self.corpus_size, c.concurrency, c.workers, c.seed
        ));
        if c.shards > 1 {
            out.push_str(&format!(
                "  sharded: {} engines behind rendezvous routing (fleet-merged counters below)\n",
                c.shards
            ));
        }
        out.push_str(&format!(
            "  faults: {}\n",
            c.faults.as_deref().unwrap_or("(none armed)")
        ));
        out.push_str(&format!(
            "  ok {}  failed {}  exact {}/{} -> {}\n",
            self.ok,
            self.failed,
            self.exact,
            self.ok,
            if self.all_successes_exact() {
                "ok (every success bit-equal to the row-wise reference)"
            } else {
                "FAILED"
            }
        ));
        out.push_str(&format!(
            "  paths: fallbacks {} (quarantined {})  worker panics {}  deadline-exceeded {}\n",
            s.fallbacks, s.quarantined, self.health.worker_panics, s.deadline_exceeded
        ));
        if let Some(batch) = &c.batch {
            out.push_str(&format!(
                "  batching: max_batch_k={} k_block={}   {} batches / {} fused requests\n",
                batch.max_batch_k, batch.k_block, s.batches, s.batched_requests
            ));
        }
        let counter = |name: &str| self.manifest.counters.get(name).copied().unwrap_or(0);
        if let Some(dir) = &c.plan_store {
            out.push_str(&format!(
                "  plan store: {}   warm {}  hit {}  miss {}  save {}  reject {}  save-errors {}\n",
                dir.display(),
                counter("serve.store.warm"),
                counter("serve.store.hit"),
                counter("serve.store.miss"),
                counter("serve.store.save"),
                counter("serve.store.reject"),
                counter("serve.store.save_error"),
            ));
        }
        if c.deltas {
            out.push_str(&format!(
                "  deltas: committed {}  failed {}  final epoch {}   (attempt {}  commit {}  abort {})\n",
                self.deltas_committed,
                self.deltas_failed,
                match self.final_epoch_exact {
                    Some(true) => "exact (bit-equal to from-scratch prepare)",
                    Some(false) => "FAILED",
                    None => "unchecked",
                },
                counter("serve.delta.attempt"),
                counter("serve.delta.commit"),
                counter("serve.delta.abort"),
            ));
        }
        out.push_str(&format!(
            "  breaker: open {}  half-open {}  closed {}   retries: scheduled {}  suppressed {}  attempted {}\n",
            counter("serve.breaker.open"),
            counter("serve.breaker.half_open"),
            counter("serve.breaker.close"),
            counter("serve.retry.scheduled"),
            counter("serve.retry.suppressed"),
            counter("serve.retry.attempt"),
        ));
        out.push_str(&format!(
            "  health: ready={} workers {}/{} queue {}/{} open-breakers {} poisoned {}\n",
            self.health.ready(),
            self.health.workers_alive,
            self.health.workers_total,
            self.health.queue_depth,
            self.health.queue_capacity,
            self.health.open_breakers,
            self.health.poisoned_plans,
        ));
        if !self.fault_hits.is_empty() {
            let hits: Vec<String> = self
                .fault_hits
                .iter()
                .map(|(p, h)| format!("{p}={h}"))
                .collect();
            out.push_str(&format!("  fault hits: {}\n", hits.join(" ")));
        }
        out
    }
}

/// Quantises values onto the integer grid `{-8, …, 8}` so that every
/// product and partial sum in SpMM/SpMV/SDDMM/SpGEMM is exactly
/// representable and summation order cannot change the result.
fn quantize(values: &mut [f64]) {
    for v in values {
        *v = (*v * 8.0).round().clamp(-8.0, 8.0);
    }
}

/// Which kernel family a scheduled request exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosOp {
    Spmm,
    Spmv,
    Sddmm,
    Spgemm,
}

struct ChaosCase {
    matrix: Arc<CsrMatrix<f64>>,
    x: Arc<DenseMatrix<f64>>,
    y: Arc<DenseMatrix<f64>>,
    /// The SpMV vector operand (quantised).
    v: Arc<Vec<f64>>,
    /// The sparse SpGEMM right-hand operand (quantised).
    b: Arc<CsrMatrix<f64>>,
    /// Sequential row-wise SpMM reference (bit-exact target).
    spmm_ref: DenseMatrix<f64>,
    /// Sequential row-wise SpMV reference (bit-exact target).
    spmv_ref: Vec<f64>,
    /// Sequential row-wise SDDMM reference (bit-exact target).
    sddmm_ref: Vec<f64>,
    /// Sequential Gustavson SpGEMM reference (bit-exact target).
    spgemm_ref: CsrMatrix<f64>,
}

/// Computes the four sequential references for a (quantised) operand
/// set and packs them into a [`ChaosCase`].
fn make_case(
    matrix: Arc<CsrMatrix<f64>>,
    x: Arc<DenseMatrix<f64>>,
    y: Arc<DenseMatrix<f64>>,
    v: Arc<Vec<f64>>,
    b: Arc<CsrMatrix<f64>>,
) -> ChaosCase {
    let spmm_ref = spmm::spmm_rowwise_seq(&matrix, &x)
        .unwrap_or_else(|e| unreachable!("generated corpus is valid: {e}"));
    let spmv_ref = spmv::spmv_rowwise_seq(&matrix, &v)
        .unwrap_or_else(|e| unreachable!("generated corpus is valid: {e}"));
    let sddmm_ref = sddmm::sddmm_rowwise_seq(&matrix, &x, &y)
        .unwrap_or_else(|e| unreachable!("generated corpus is valid: {e}"));
    let spgemm_ref = spgemm::spgemm_gustavson_seq(&matrix, &b)
        .unwrap_or_else(|e| unreachable!("generated corpus is valid: {e}"));
    ChaosCase {
        matrix,
        x,
        y,
        v,
        b,
        spmm_ref,
        spmv_ref,
        sddmm_ref,
        spgemm_ref,
    }
}

fn build_corpus(config: &ChaosBenchConfig) -> Vec<ChaosCase> {
    (0..6u64)
        .map(|i| {
            let mut matrix = generators::uniform_random::<f64>(
                64 + 16 * i as usize,
                48 + 8 * i as usize,
                4 + (i as usize % 3),
                config.seed ^ (0xC0DE + i),
            );
            quantize(matrix.values_mut());
            let mut x =
                generators::random_dense::<f64>(matrix.ncols(), config.k, config.seed ^ (17 + i));
            quantize(x.data_mut());
            let mut y =
                generators::random_dense::<f64>(matrix.nrows(), config.k, config.seed ^ (31 + i));
            quantize(y.data_mut());
            let mut v: Vec<f64> =
                generators::random_dense::<f64>(matrix.ncols(), 1, config.seed ^ (47 + i))
                    .data()
                    .to_vec();
            quantize(&mut v);
            let mut b = generators::uniform_random::<f64>(
                matrix.ncols(),
                40 + 8 * i as usize,
                3 + (i as usize % 2),
                config.seed ^ (0xBEEF + i),
            );
            quantize(b.values_mut());
            make_case(
                Arc::new(matrix),
                Arc::new(x),
                Arc::new(y),
                Arc::new(v),
                Arc::new(b),
            )
        })
        .collect()
}

/// Epochs the `--deltas` mutator chains over the stream. `epochs[0]`
/// is the hottest corpus structure untouched; `deltas[e]` patches
/// `epochs[e]` into `epochs[e + 1]`. Every epoch shares the base
/// case's dense/vector/sparse operands (a structural delta never
/// changes the shape), so each epoch only recomputes references.
struct DeltaScript {
    epochs: Vec<ChaosCase>,
    #[allow(clippy::type_complexity)]
    deltas: Vec<(Vec<(usize, usize, f64)>, Vec<(usize, usize)>)>,
}

/// Structural-delta epochs the mutator walks per `--deltas` run.
const DELTA_EPOCHS: usize = 4;

/// The deterministic delta for epoch `e`: remove one existing edge and
/// add one previously-absent edge (integer-grid value) in a different
/// row, so chained epochs shrink and grow rows — including emptying a
/// one-edge row — without ever tripping the up-front delta validation.
#[allow(clippy::type_complexity)]
fn epoch_delta(m: &CsrMatrix<f64>, e: usize) -> (Vec<(usize, usize, f64)>, Vec<(usize, usize)>) {
    let nrows = m.nrows();
    let mut removed = Vec::new();
    for off in 0..nrows {
        let r = (e * 5 + off) % nrows;
        let cols = m.row_cols(r);
        if !cols.is_empty() {
            removed.push((r, cols[e % cols.len()] as usize));
            break;
        }
    }
    let mut added = Vec::new();
    for off in 0..nrows {
        let r = (e * 7 + 3 + off) % nrows;
        let cols = m.row_cols(r);
        let fresh = (0..m.ncols() as u32)
            .find(|c| cols.binary_search(c).is_err() && !removed.contains(&(r, *c as usize)));
        if let Some(c) = fresh {
            added.push((r, c as usize, ((e % 9) as f64) - 4.0));
            break;
        }
    }
    (added, removed)
}

fn build_delta_script(base: &ChaosCase) -> DeltaScript {
    let mut epochs = vec![make_case(
        base.matrix.clone(),
        base.x.clone(),
        base.y.clone(),
        base.v.clone(),
        base.b.clone(),
    )];
    let mut deltas = Vec::new();
    for e in 0..DELTA_EPOCHS {
        let prev = &epochs[e].matrix;
        let (added, removed) = epoch_delta(prev, e);
        let next = prev
            .apply_structural_delta(&added, &removed)
            .unwrap_or_else(|err| unreachable!("scripted delta is valid by construction: {err}"));
        epochs.push(make_case(
            Arc::new(next),
            base.x.clone(),
            base.y.clone(),
            base.v.clone(),
            base.b.clone(),
        ));
        deltas.push((added, removed));
    }
    DeltaScript { epochs, deltas }
}

/// The serving surface the chaos stream drives: one engine, or a
/// rendezvous-routed fleet of them behind a [`ShardRouter`]. The
/// delegating methods keep the stream loop and the end-of-run
/// snapshots identical either way; the router's fleet-level merges
/// stand in for the single engine's counters.
enum ChaosTarget {
    Engine(ServeEngine<f64>),
    Router(ShardRouter<f64>),
}

impl ChaosTarget {
    fn execute(&self, request: Request<f64>) -> Result<crate::engine::Response<f64>, ServeError> {
        match self {
            ChaosTarget::Engine(engine) => engine.execute(request),
            ChaosTarget::Router(router) => router.execute(request),
        }
    }

    fn apply_delta(
        &self,
        fp: &MatrixFingerprint,
        added: &[(usize, usize, f64)],
        removed: &[(usize, usize)],
    ) -> Result<Option<MatrixFingerprint>, ServeError> {
        match self {
            ChaosTarget::Engine(engine) => engine.apply_delta(fp, added, removed),
            ChaosTarget::Router(router) => router.apply_delta(fp, added, removed),
        }
    }

    fn stats(&self) -> ServeStats {
        match self {
            ChaosTarget::Engine(engine) => engine.stats(),
            ChaosTarget::Router(router) => router.stats().fleet,
        }
    }

    fn cache_stats(&self) -> CacheStats {
        match self {
            ChaosTarget::Engine(engine) => engine.cache_stats(),
            ChaosTarget::Router(router) => router.cache_stats(),
        }
    }

    fn health(&self) -> HealthSnapshot {
        match self {
            ChaosTarget::Engine(engine) => engine.health(),
            ChaosTarget::Router(router) => router.health().fleet().clone(),
        }
    }

    fn telemetry(&self) -> spmm_telemetry::TelemetryHandle {
        match self {
            ChaosTarget::Engine(engine) => engine.telemetry().clone(),
            ChaosTarget::Router(router) => router.telemetry().clone(),
        }
    }

    fn manifest(&self) -> RunManifest {
        match self {
            ChaosTarget::Engine(engine) => engine.manifest(),
            ChaosTarget::Router(router) => router.manifest(),
        }
    }
}

/// Whether a successful response is bit-equal to its reference.
fn is_exact(case: &ChaosCase, op: ChaosOp, output: &Output<f64>) -> bool {
    match (op, output) {
        (ChaosOp::Spmm, Output::Dense(got)) => got.data() == case.spmm_ref.data(),
        (ChaosOp::Spmv, Output::Vector(got)) => *got == case.spmv_ref,
        (ChaosOp::Sddmm, Output::Values(got)) => *got == case.sddmm_ref,
        (ChaosOp::Spgemm, Output::Sparse(got)) => {
            got.same_structure(&case.spgemm_ref) && got.values() == case.spgemm_ref.values()
        }
        _ => false,
    }
}

/// Runs the chaos workload and returns the observed report. When
/// `config.faults` is set, the parsed [`FaultPlan`] is armed
/// process-wide for the duration of the stream (taking the global
/// arming lock); `None` runs clean without arming anything.
///
/// The driver asserts nothing itself — the caller (the chaos suite,
/// CI) checks [`ChaosBenchReport::all_successes_exact`] and the
/// breaker/quarantine counters, so a degraded run still reports
/// honestly.
///
/// # Errors
/// [`ServeError::Prepare`] with the parse message when `config.faults`
/// is not valid fault-spec grammar.
pub fn run_chaos_bench(config: &ChaosBenchConfig) -> Result<ChaosBenchReport, ServeError> {
    let guard = match &config.faults {
        Some(spec) => Some(
            FaultPlan::parse(spec, config.seed)
                .map_err(|msg| ServeError::Prepare(SparseError::InvalidStructure(msg)))?
                .arm(),
        ),
        None => None,
    };
    let corpus = build_corpus(config);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let schedule = zipf_schedule(config.requests, corpus.len(), config.zipf_s, &mut rng);

    let mut serve_config = ServeConfig::builder()
        .workers(config.workers)
        .queue_capacity(config.queue_capacity)
        .cache_capacity(config.cache_capacity)
        .retry_jitter_seed(config.seed);
    if let Some(batch) = config.batch {
        serve_config = serve_config.batching(batch);
    }
    if let Some(dir) = &config.plan_store {
        let store = PlanStore::open(dir).map_err(ServeError::Prepare)?;
        serve_config = serve_config.plan_store(Arc::new(store));
    }
    let serve = if config.shards > 1 {
        ChaosTarget::Router(ShardRouter::<f64>::start(
            RouterConfig::builder()
                .shards(config.shards)
                .shard(serve_config.build()?)
                .build()?,
        )?)
    } else {
        ChaosTarget::Engine(ServeEngine::<f64>::start(serve_config.build()?))
    };

    let concurrency = config.concurrency.max(1);
    // --deltas: a scripted epoch chain over the hottest structure, a
    // shared committed-epoch watermark the clients read, and mutator
    // tallies. Clients always check against the epoch they *sent*, so
    // the watermark only has to be monotonic, not synchronised with
    // the serving side.
    let delta_script = config.deltas.then(|| build_delta_script(&corpus[0]));
    let committed_epoch = AtomicUsize::new(0);
    let deltas_committed = AtomicUsize::new(0);
    let deltas_failed = AtomicUsize::new(0);
    let stream_start = Instant::now();
    // (ok, failed, exact) per client, summed after the stream drains
    let tallies: Vec<(usize, usize, usize)> = std::thread::scope(|scope| {
        if let Some(script) = &delta_script {
            let serve = &serve;
            let committed_epoch = &committed_epoch;
            let deltas_committed = &deltas_committed;
            let deltas_failed = &deltas_failed;
            scope.spawn(move || {
                for (e, (added, removed)) in script.deltas.iter().enumerate() {
                    let fp = MatrixFingerprint::of(&script.epochs[e].matrix);
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        match serve.apply_delta(&fp, added, removed) {
                            Ok(Some(_)) => {
                                committed_epoch.store(e + 1, Ordering::Release);
                                deltas_committed.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Ok(None) => {
                                // the epoch's plan is not resident (cold
                                // start or evicted): drive one request
                                // through the serving path to prepare
                                // it, then retry the delta
                                let epoch = &script.epochs[e];
                                let _ = serve
                                    .execute(Request::spmm(epoch.matrix.clone(), epoch.x.clone()));
                            }
                            Err(_) => {
                                // injected or real — the old epoch must
                                // still serve, which the concurrent
                                // clients are verifying right now
                                deltas_failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        if attempts >= 32 {
                            // a persistent fault schedule (e.g. `@*`)
                            // can legitimately pin the fleet on the old
                            // epoch; report honestly and stop mutating
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    // let some client traffic land on the new epoch
                    // before chaining the next delta on top of it
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        let handles: Vec<_> = (0..concurrency)
            .map(|client| {
                let serve = &serve;
                let schedule = &schedule;
                let corpus = &corpus;
                let delta_script = &delta_script;
                let committed_epoch = &committed_epoch;
                scope.spawn(move || {
                    let (mut ok, mut failed, mut exact) = (0, 0, 0);
                    for (idx, &mi) in schedule
                        .iter()
                        .enumerate()
                        .filter(|(idx, _)| idx % concurrency == client)
                    {
                        let case = match (mi, delta_script) {
                            // the mutating structure: send the latest
                            // committed epoch and check against *its*
                            // reference — whatever the mutator does
                            // next, this structure's plan must answer
                            // for this structure
                            (0, Some(script)) => {
                                &script.epochs[committed_epoch.load(Ordering::Acquire)]
                            }
                            _ => &corpus[mi],
                        };
                        // round-robin over the four kernel families so
                        // every path sees the fault schedule
                        let op = match idx % 4 {
                            1 => ChaosOp::Spmv,
                            2 => ChaosOp::Spgemm,
                            3 => ChaosOp::Sddmm,
                            _ => ChaosOp::Spmm,
                        };
                        let request = match op {
                            ChaosOp::Spmm => Request::spmm(case.matrix.clone(), case.x.clone()),
                            ChaosOp::Spmv => Request::spmv(case.matrix.clone(), case.v.clone()),
                            ChaosOp::Sddmm => {
                                Request::sddmm(case.matrix.clone(), case.x.clone(), case.y.clone())
                            }
                            ChaosOp::Spgemm => Request::spgemm(case.matrix.clone(), case.b.clone()),
                        };
                        match serve.execute(request) {
                            Ok(resp) => {
                                ok += 1;
                                if is_exact(case, op, &resp.output) {
                                    exact += 1;
                                }
                            }
                            Err(_) => failed += 1,
                        }
                    }
                    (ok, failed, exact)
                })
            })
            .collect();
        handles
            .into_iter()
            // a panicked client (which would itself be a bug) counts
            // nothing; the totals then fail all_successes_exact
            .map(|h| h.join().unwrap_or((0, 0, 0)))
            .collect()
    });
    let wall = stream_start.elapsed();
    let (ok, failed, exact) = tallies
        .iter()
        .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z));

    // disarm before snapshotting so the health probe runs clean
    let fault_hits: BTreeMap<String, u64> = match (&guard, &config.faults) {
        (Some(guard), Some(spec)) => FaultPlan::parse(spec, config.seed)
            .map(|plan| {
                plan.rules()
                    .iter()
                    .map(|r| (r.point.clone(), guard.hits(&r.point)))
                    .collect()
            })
            .unwrap_or_default(),
        _ => BTreeMap::new(),
    };
    drop(guard);

    // --deltas epilogue, run clean (faults disarmed): the final
    // committed epoch's plan is the product of every chained
    // incremental patch that landed — it must serve all four kernel
    // families bit-equal to the sequential references, and SpMM must
    // additionally match a from-scratch prepare over the final
    // structure bit-for-bit.
    let final_epoch_exact = delta_script.as_ref().map(|script| {
        let case = &script.epochs[committed_epoch.load(Ordering::Acquire)];
        let mut all_exact = true;
        for op in [
            ChaosOp::Spmm,
            ChaosOp::Spmv,
            ChaosOp::Sddmm,
            ChaosOp::Spgemm,
        ] {
            let request = match op {
                ChaosOp::Spmm => Request::spmm(case.matrix.clone(), case.x.clone()),
                ChaosOp::Spmv => Request::spmv(case.matrix.clone(), case.v.clone()),
                ChaosOp::Sddmm => {
                    Request::sddmm(case.matrix.clone(), case.x.clone(), case.y.clone())
                }
                ChaosOp::Spgemm => Request::spgemm(case.matrix.clone(), case.b.clone()),
            };
            match serve.execute(request) {
                Ok(resp) => all_exact &= is_exact(case, op, &resp.output),
                Err(_) => all_exact = false,
            }
        }
        all_exact &= Engine::prepare(&case.matrix, &EngineConfig::default())
            .and_then(|fresh| fresh.spmm(&case.x))
            .map(|out| out.data() == case.spmm_ref.data())
            .unwrap_or(false);
        all_exact
    });

    let stats = serve.stats();
    let cache = serve.cache_stats();
    let health = serve.health();
    let telemetry = serve.telemetry();
    telemetry.gauge("chaos.ok", ok as f64);
    telemetry.gauge("chaos.failed", failed as f64);
    telemetry.gauge("chaos.exact", exact as f64);
    if config.shards > 1 {
        telemetry.gauge("chaos.shards", config.shards as f64);
    }
    if config.deltas {
        telemetry.gauge(
            "chaos.deltas_committed",
            deltas_committed.load(Ordering::Relaxed) as f64,
        );
        telemetry.gauge(
            "chaos.deltas_failed",
            deltas_failed.load(Ordering::Relaxed) as f64,
        );
    }
    telemetry.meta("chaos.seed", &config.seed.to_string());
    if let Some(spec) = &config.faults {
        telemetry.meta("chaos.faults", spec);
    }
    let manifest = serve.manifest();

    Ok(ChaosBenchReport {
        config: config.clone(),
        corpus_size: corpus.len(),
        wall,
        ok,
        failed,
        exact,
        fault_hits,
        stats,
        cache,
        health,
        manifest,
        deltas_committed: deltas_committed.load(Ordering::Relaxed),
        deltas_failed: deltas_failed.load(Ordering::Relaxed),
        final_epoch_exact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_lands_on_the_integer_grid() {
        let mut values = vec![0.13, -0.99, 0.51, 1.7, -3.0];
        quantize(&mut values);
        for v in &values {
            assert_eq!(v.fract(), 0.0, "{v} is not an integer");
            assert!((-8.0..=8.0).contains(v));
        }
    }

    #[test]
    fn corpus_references_are_self_consistent() {
        let config = ChaosBenchConfig::default();
        let corpus = build_corpus(&config);
        assert_eq!(corpus.len(), 6);
        for case in &corpus {
            // the references were computed from quantised operands, so
            // recomputing them must be bit-identical (determinism)
            let again = spmm::spmm_rowwise_seq(&case.matrix, &case.x).unwrap();
            assert_eq!(again.data(), case.spmm_ref.data());
            let v_again = spmv::spmv_rowwise_seq(&case.matrix, &case.v).unwrap();
            assert_eq!(v_again, case.spmv_ref);
            let c_again = spgemm::spgemm_gustavson_seq(&case.matrix, &case.b).unwrap();
            assert!(c_again.same_structure(&case.spgemm_ref));
            assert_eq!(c_again.values(), case.spgemm_ref.values());
            assert!(case.matrix.values().iter().all(|v| v.fract() == 0.0));
            assert!(case.b.values().iter().all(|v| v.fract() == 0.0));
            assert!(case.v.iter().all(|v| v.fract() == 0.0));
        }
    }

    #[test]
    fn bad_fault_spec_is_a_prepare_error_not_a_panic() {
        let config = ChaosBenchConfig {
            faults: Some("serve.worker:frobnicate@1".into()),
            ..ChaosBenchConfig::default()
        };
        let err = run_chaos_bench(&config).unwrap_err();
        assert!(matches!(err, ServeError::Prepare(_)), "{err:?}");
        assert!(err.to_string().contains("frobnicate"), "{err}");
    }

    #[test]
    fn delta_script_chains_valid_epochs() {
        let config = ChaosBenchConfig::default();
        let corpus = build_corpus(&config);
        let script = build_delta_script(&corpus[0]);
        assert_eq!(script.epochs.len(), DELTA_EPOCHS + 1);
        assert_eq!(script.deltas.len(), DELTA_EPOCHS);
        for e in 0..DELTA_EPOCHS {
            let (added, removed) = &script.deltas[e];
            assert!(!added.is_empty() && !removed.is_empty());
            // added values stay on the integer grid (bit-exactness)
            assert!(added.iter().all(|&(_, _, v)| v.fract() == 0.0));
            // replaying the scripted delta reproduces the next epoch
            let next = script.epochs[e]
                .matrix
                .apply_structural_delta(added, removed)
                .unwrap();
            assert!(next.same_structure(&script.epochs[e + 1].matrix));
            assert_eq!(next.values(), script.epochs[e + 1].matrix.values());
            // a structural delta never changes the shape, so the base
            // case's operands stay valid for every epoch
            assert_eq!(next.nrows(), corpus[0].matrix.nrows());
            assert_eq!(next.ncols(), corpus[0].matrix.ncols());
        }
    }

    // Clean and faulted end-to-end runs live in tests/chaos.rs, where
    // the global fault registry can be serialised across the suite.
}
