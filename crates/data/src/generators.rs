//! Seeded generators for the structural classes found in SuiteSparse /
//! Network Repository.
//!
//! All generators are deterministic functions of their parameters and
//! `seed`. Values are uniform in `[-1, 1)`; the structure, not the
//! values, is what the reproduction studies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spmm_sparse::{CooMatrix, CsrMatrix, DenseMatrix, Permutation, Scalar};
use std::collections::HashSet;

fn rng_for(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

fn random_value<T: Scalar>(rng: &mut SmallRng) -> T {
    T::from_f64(rng.random_range(-1.0..1.0))
}

/// Samples `k` distinct column indices in `0..ncols` (ascending not
/// required; caller dedups via COO).
fn distinct_cols(rng: &mut SmallRng, ncols: usize, k: usize) -> Vec<u32> {
    let k = k.min(ncols);
    if k * 4 >= ncols {
        // dense-ish row: Fisher-Yates over the full range
        let mut all: Vec<u32> = (0..ncols as u32).collect();
        for i in 0..k {
            let j = rng.random_range(i..ncols);
            all.swap(i, j);
        }
        all.truncate(k);
        all
    } else {
        let mut set = HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let c = rng.random_range(0..ncols) as u32;
            if set.insert(c) {
                out.push(c);
            }
        }
        out
    }
}

fn csr_from_pairs<T: Scalar>(
    nrows: usize,
    ncols: usize,
    mut pairs: Vec<(u32, u32)>,
    rng: &mut SmallRng,
) -> CsrMatrix<T> {
    pairs.sort_unstable();
    pairs.dedup();
    let mut coo = CooMatrix::new(nrows, ncols).expect("valid dims");
    coo.reserve(pairs.len());
    for (r, c) in pairs {
        coo.push(r, c, random_value(rng)).expect("in-bounds pair");
    }
    CsrMatrix::from_coo(&coo)
}

/// Uniform random matrix: every row has exactly `row_nnz` nonzeros at
/// uniformly random columns. The "extremely scattered" end of the
/// spectrum (Fig 7b): rows share columns only by chance.
pub fn uniform_random<T: Scalar>(
    nrows: usize,
    ncols: usize,
    row_nnz: usize,
    seed: u64,
) -> CsrMatrix<T> {
    let mut rng = rng_for(seed);
    let mut coo = CooMatrix::new(nrows, ncols).expect("valid dims");
    coo.reserve(nrows * row_nnz);
    for r in 0..nrows {
        for c in distinct_cols(&mut rng, ncols, row_nnz) {
            coo.push(r as u32, c, random_value(&mut rng))
                .expect("in-bounds");
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Chung–Lu power-law graph: endpoint `i` of each edge is drawn with
/// probability ∝ `(i+1)^-exponent`. Models social / web graphs whose
/// hub columns make some panels dense while leaving most rows scattered.
pub fn power_law<T: Scalar>(
    nrows: usize,
    ncols: usize,
    nedges: usize,
    exponent: f64,
    seed: u64,
) -> CsrMatrix<T> {
    let mut rng = rng_for(seed);
    let cum_row = cumulative_weights(nrows, exponent);
    let cum_col = cumulative_weights(ncols, exponent);
    let mut pairs = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let r = sample_cumulative(&cum_row, &mut rng) as u32;
        let c = sample_cumulative(&cum_col, &mut rng) as u32;
        pairs.push((r, c));
    }
    csr_from_pairs(nrows, ncols, pairs, &mut rng)
}

fn cumulative_weights(n: usize, exponent: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0;
    for i in 0..n {
        acc += ((i + 1) as f64).powf(-exponent);
        cum.push(acc);
    }
    cum
}

fn sample_cumulative(cum: &[f64], rng: &mut SmallRng) -> usize {
    let total = *cum.last().expect("non-empty weights");
    let x = rng.random_range(0.0..total);
    cum.partition_point(|&c| c <= x).min(cum.len() - 1)
}

/// R-MAT recursive matrix (Graph500 style) with partition probabilities
/// `(a, b, c, d)`, `a+b+c+d = 1`. `scale` gives `2^scale` rows/cols.
pub fn rmat<T: Scalar>(
    scale: u32,
    edge_factor: usize,
    probs: (f64, f64, f64, f64),
    seed: u64,
) -> CsrMatrix<T> {
    let n = 1usize << scale;
    let nedges = n * edge_factor;
    let (a, b, c, _d) = probs;
    let mut rng = rng_for(seed);
    let mut pairs = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let (mut r, mut cidx) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let x: f64 = rng.random();
            let (dr, dc) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << level;
            cidx |= dc << level;
        }
        pairs.push((r as u32, cidx as u32));
    }
    csr_from_pairs(n, n, pairs, &mut rng)
}

/// Banded matrix: each row has `row_nnz` nonzeros at random offsets
/// within `±half_bandwidth` of the diagonal. Consecutive rows overlap
/// heavily, so the matrix is *already well clustered* (Fig 7a regime).
pub fn banded<T: Scalar>(
    n: usize,
    half_bandwidth: usize,
    row_nnz: usize,
    seed: u64,
) -> CsrMatrix<T> {
    let mut rng = rng_for(seed);
    let mut pairs = Vec::with_capacity(n * row_nnz);
    for r in 0..n {
        let lo = r.saturating_sub(half_bandwidth);
        let hi = (r + half_bandwidth + 1).min(n);
        let width = hi - lo;
        let take = row_nnz.min(width);
        let mut offs: Vec<usize> = (0..width).collect();
        for i in 0..take {
            let j = rng.random_range(i..width);
            offs.swap(i, j);
        }
        for &o in offs.iter().take(take) {
            pairs.push((r as u32, (lo + o) as u32));
        }
    }
    csr_from_pairs(n, n, pairs, &mut rng)
}

/// 5-point 2-D Laplacian stencil on an `nx × ny` grid — the classic
/// scientific-computing matrix (deterministic; no seed).
pub fn laplacian_2d<T: Scalar>(nx: usize, ny: usize) -> CsrMatrix<T> {
    let n = nx * ny;
    let mut coo = CooMatrix::new(n, n).expect("valid dims");
    coo.reserve(5 * n);
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            coo.push(i, i, T::from_f64(4.0)).expect("in-bounds");
            if x > 0 {
                coo.push(i, idx(x - 1, y), T::from_f64(-1.0))
                    .expect("in-bounds");
            }
            if x + 1 < nx {
                coo.push(i, idx(x + 1, y), T::from_f64(-1.0))
                    .expect("in-bounds");
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1), T::from_f64(-1.0))
                    .expect("in-bounds");
            }
            if y + 1 < ny {
                coo.push(i, idx(x, y + 1), T::from_f64(-1.0))
                    .expect("in-bounds");
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// Block-diagonal clustered matrix: rows of block `b` draw their columns
/// from a shared pool of `block_cols` columns, so rows *within* a block
/// have high Jaccard similarity and rows across blocks share nothing.
/// This is the "well clustered" case where ASpT alone performs well.
pub fn block_diagonal<T: Scalar>(
    nblocks: usize,
    rows_per_block: usize,
    block_cols: usize,
    row_nnz: usize,
    seed: u64,
) -> CsrMatrix<T> {
    let nrows = nblocks * rows_per_block;
    let ncols = nblocks * block_cols;
    let mut rng = rng_for(seed);
    let mut pairs = Vec::with_capacity(nrows * row_nnz);
    for b in 0..nblocks {
        let col_base = (b * block_cols) as u32;
        for rb in 0..rows_per_block {
            let r = (b * rows_per_block + rb) as u32;
            for c in distinct_cols(&mut rng, block_cols, row_nnz) {
                pairs.push((r, col_base + c));
            }
        }
    }
    csr_from_pairs(nrows, ncols, pairs, &mut rng)
}

/// RNG-free block diagonal: every row of block `b` carries *all* of
/// the block's columns, and values are a fixed function of the
/// position. A *pinned* fixture for the §4 skip heuristics — when the
/// ASpT panel height divides `rows_per_block`, every column of every
/// panel has `rows_per_block ≥ 2` nonzeros, so the dense ratio is
/// exactly 1.0 (round 1 skipped) and the sparse remainder is empty
/// (round 2 finds no candidate pairs). Both decisions hold under any
/// RNG backend, unlike [`block_diagonal`]'s sampled columns which can
/// land near the thresholds.
pub fn pinned_block_diagonal<T: Scalar>(
    nblocks: usize,
    rows_per_block: usize,
    block_cols: usize,
) -> CsrMatrix<T> {
    let nrows = nblocks * rows_per_block;
    let ncols = nblocks * block_cols;
    let mut rowptr = Vec::with_capacity(nrows + 1);
    let mut colidx = Vec::with_capacity(nrows * block_cols);
    let mut values = Vec::with_capacity(nrows * block_cols);
    rowptr.push(0);
    for b in 0..nblocks {
        let col_base = (b * block_cols) as u32;
        for rb in 0..rows_per_block {
            let r = b * rows_per_block + rb;
            for c in 0..block_cols {
                colidx.push(col_base + c as u32);
                // fixed, never-zero values in [-9, 9]
                values.push(T::from_f64(((r * 7 + c * 13) % 19) as f64 - 9.5));
            }
            rowptr.push(colidx.len());
        }
    }
    CsrMatrix::from_parts(nrows, ncols, rowptr, colidx, values)
        .expect("structurally valid by construction")
}

/// [`block_diagonal`] followed by a random row shuffle: the cluster
/// structure exists but consecutive rows no longer share columns. This
/// is the *recoverable* case the paper's row reordering targets.
pub fn shuffled_block_diagonal<T: Scalar>(
    nblocks: usize,
    rows_per_block: usize,
    block_cols: usize,
    row_nnz: usize,
    seed: u64,
) -> CsrMatrix<T> {
    let m = block_diagonal::<T>(nblocks, rows_per_block, block_cols, row_nnz, seed);
    shuffle_rows(&m, seed ^ 0x9e37_79b9_7f4a_7c15)
}

/// Clustered matrix with per-row noise: each row takes most columns from
/// its block pool plus a few uniformly random "noise" columns, then rows
/// are shuffled. Models community-structured graphs with cross edges.
pub fn noisy_shuffled_clusters<T: Scalar>(
    nblocks: usize,
    rows_per_block: usize,
    block_cols: usize,
    row_nnz: usize,
    noise_nnz: usize,
    seed: u64,
) -> CsrMatrix<T> {
    let nrows = nblocks * rows_per_block;
    let ncols = nblocks * block_cols;
    let mut rng = rng_for(seed);
    let mut pairs = Vec::with_capacity(nrows * (row_nnz + noise_nnz));
    for b in 0..nblocks {
        let col_base = (b * block_cols) as u32;
        for rb in 0..rows_per_block {
            let r = (b * rows_per_block + rb) as u32;
            for c in distinct_cols(&mut rng, block_cols, row_nnz) {
                pairs.push((r, col_base + c));
            }
            for _ in 0..noise_nnz {
                pairs.push((r, rng.random_range(0..ncols) as u32));
            }
        }
    }
    let m = csr_from_pairs::<T>(nrows, ncols, pairs, &mut rng);
    shuffle_rows(&m, seed ^ 0x85eb_ca6b_27d4_eb4f)
}

/// Pure diagonal matrix — zero row similarity, the degenerate case of
/// Fig 7b where no reordering can help.
pub fn diagonal<T: Scalar>(n: usize, seed: u64) -> CsrMatrix<T> {
    let mut rng = rng_for(seed);
    let diag: Vec<T> = (0..n).map(|_| random_value(&mut rng)).collect();
    CsrMatrix::from_diagonal(&diag)
}

/// Bipartite user × item ratings matrix with Zipf-skewed item
/// popularity — the collaborative-filtering workload of the paper's
/// intro. Popular items are shared across many users, giving partial
/// row similarity recoverable by clustering.
pub fn bipartite_cf<T: Scalar>(
    nusers: usize,
    nitems: usize,
    avg_ratings: usize,
    zipf_exponent: f64,
    seed: u64,
) -> CsrMatrix<T> {
    let mut rng = rng_for(seed);
    let cum = cumulative_weights(nitems, zipf_exponent);
    let mut pairs = Vec::with_capacity(nusers * avg_ratings);
    for u in 0..nusers {
        // 1..2*avg ratings per user (uniform), at Zipf-sampled items
        let k = rng.random_range(1..=avg_ratings * 2);
        for _ in 0..k {
            pairs.push((u as u32, sample_cumulative(&cum, &mut rng) as u32));
        }
    }
    csr_from_pairs(nusers, nitems, pairs, &mut rng)
}

/// Applies a uniformly random row permutation.
pub fn shuffle_rows<T: Scalar>(m: &CsrMatrix<T>, seed: u64) -> CsrMatrix<T> {
    let mut rng = rng_for(seed);
    let mut order: Vec<u32> = (0..m.nrows() as u32).collect();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    m.permute_rows(&Permutation::from_order(order).expect("shuffle is a bijection"))
}

/// Random dense matrix with entries uniform in `[-1, 1)` — the `X` (and
/// SDDMM `Y`) operand ("randomly generated dense matrices", §5.2).
pub fn random_dense<T: Scalar>(nrows: usize, ncols: usize, seed: u64) -> DenseMatrix<T> {
    let mut rng = rng_for(seed);
    DenseMatrix::from_fn(nrows, ncols, |_, _| random_value(&mut rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_sparse::similarity::avg_consecutive_similarity;
    use spmm_sparse::stats::MatrixStats;

    #[test]
    fn uniform_random_shape_and_determinism() {
        let a = uniform_random::<f64>(100, 200, 8, 42);
        let b = uniform_random::<f64>(100, 200, 8, 42);
        let c = uniform_random::<f64>(100, 200, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.nrows(), 100);
        assert_eq!(a.ncols(), 200);
        assert_eq!(a.nnz(), 800);
        for i in 0..a.nrows() {
            assert_eq!(a.row_nnz(i), 8);
        }
    }

    #[test]
    fn uniform_random_row_nnz_clamped_to_ncols() {
        let m = uniform_random::<f32>(4, 3, 10, 1);
        for i in 0..4 {
            assert_eq!(m.row_nnz(i), 3);
        }
    }

    #[test]
    fn power_law_has_skewed_degrees() {
        let m = power_law::<f64>(500, 500, 4000, 0.8, 7);
        let s = MatrixStats::compute(&m);
        assert!(s.nnz > 1000, "dedup should keep most edges: {}", s.nnz);
        // hub rows exist: max row length far above the mean
        assert!(
            s.max_row_nnz as f64 > 4.0 * s.avg_row_nnz,
            "max {} vs avg {}",
            s.max_row_nnz,
            s.avg_row_nnz
        );
    }

    #[test]
    fn rmat_shape() {
        let m = rmat::<f64>(8, 8, (0.57, 0.19, 0.19, 0.05), 3);
        assert_eq!(m.nrows(), 256);
        assert_eq!(m.ncols(), 256);
        assert!(m.nnz() > 256); // duplicates removed but most edges survive
    }

    #[test]
    fn banded_stays_in_band() {
        let m = banded::<f64>(300, 10, 6, 11);
        for (r, c, _) in m.iter() {
            assert!((r as i64 - c as i64).abs() <= 10);
        }
        // banded matrices are well clustered
        assert!(avg_consecutive_similarity(&m) > 0.1);
    }

    #[test]
    fn laplacian_2d_structure() {
        let m = laplacian_2d::<f64>(4, 3);
        assert_eq!(m.nrows(), 12);
        // interior point has 5 entries
        assert_eq!(m.row_nnz(5), 5);
        // corner has 3
        assert_eq!(m.row_nnz(0), 3);
        // symmetric structure
        assert!(m.same_structure(&m.transpose()));
        // row sums: 4 - (#neighbours)
        let (cols, vals) = m.row(5);
        assert_eq!(cols.len(), vals.len());
        let sum: f64 = vals.iter().sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn block_diagonal_is_well_clustered() {
        let m = block_diagonal::<f64>(10, 30, 40, 20, 5);
        assert_eq!(m.nrows(), 300);
        assert_eq!(m.ncols(), 400);
        // rows within a block share a 40-column pool with 20 picks →
        // expected Jaccard ≈ 1/3; far above random.
        assert!(avg_consecutive_similarity(&m) > 0.2);
        // entries stay inside their block's column range
        for (r, c, _) in m.iter() {
            let block = (r as usize) / 30;
            assert!((c as usize) / 40 == block, "row {r} col {c} escapes block");
        }
    }

    #[test]
    fn shuffled_block_diagonal_destroys_adjacency_not_structure() {
        let clustered = block_diagonal::<f64>(10, 30, 40, 20, 5);
        let shuffled = shuffled_block_diagonal::<f64>(10, 30, 40, 20, 5);
        assert_eq!(clustered.nnz(), shuffled.nnz());
        let sim_clustered = avg_consecutive_similarity(&clustered);
        let sim_shuffled = avg_consecutive_similarity(&shuffled);
        assert!(
            sim_shuffled < sim_clustered / 2.0,
            "shuffle should destroy consecutive similarity: {sim_clustered} -> {sim_shuffled}"
        );
    }

    #[test]
    fn noisy_clusters_have_noise_columns() {
        let m = noisy_shuffled_clusters::<f64>(5, 20, 30, 10, 3, 9);
        assert_eq!(m.nrows(), 100);
        // at least one entry escapes its (identity-ordered) block —
        // rows are shuffled, so check total out-of-pool edges exist by
        // density: pure block diagonal would cap ncols per row at 30.
        assert!(m.nnz() > 100 * 10);
    }

    #[test]
    fn diagonal_has_zero_similarity() {
        let m = diagonal::<f32>(64, 2);
        assert_eq!(m.nnz(), 64);
        assert_eq!(avg_consecutive_similarity(&m), 0.0);
    }

    #[test]
    fn bipartite_cf_popularity_skew() {
        let m = bipartite_cf::<f64>(400, 300, 10, 0.9, 21);
        assert_eq!(m.nrows(), 400);
        assert_eq!(m.ncols(), 300);
        // column 0 (most popular item) should be referenced far more
        // than a tail column
        let t = m.transpose();
        assert!(t.row_nnz(0) > t.row_nnz(299));
    }

    #[test]
    fn shuffle_rows_is_permutation() {
        let m = laplacian_2d::<f64>(8, 8);
        let s = shuffle_rows(&m, 77);
        assert_eq!(m.nnz(), s.nnz());
        // multiset of row lengths preserved
        let mut a: Vec<usize> = (0..m.nrows()).map(|i| m.row_nnz(i)).collect();
        let mut b: Vec<usize> = (0..s.nrows()).map(|i| s.row_nnz(i)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn random_dense_deterministic() {
        let a = random_dense::<f32>(10, 16, 1);
        let b = random_dense::<f32>(10, 16, 1);
        assert_eq!(a, b);
        assert!(a.all_finite());
        assert!(a.data().iter().any(|&v| v != 0.0));
    }
}
