//! Synthetic sparse-matrix generators and corpus builder.
//!
//! The paper evaluates on 1084 real matrices from the SuiteSparse
//! collection and the Network Repository (rows ≥ 10 K, cols ≥ 10 K,
//! nnz ≥ 100 K). Those downloads are not available offline, so this
//! crate produces a **seeded synthetic corpus** that spans the same
//! structural classes those collections contain:
//!
//! * *scattered* matrices (uniform random, high-exponent power law) —
//!   where neither tiling nor reordering finds reuse (Fig 7b);
//! * *well-clustered* matrices (block diagonal, banded stencils) — where
//!   plain ASpT already wins and reordering must be skipped (§4, Fig 7a);
//! * *recoverable* matrices (cluster structure destroyed by a random row
//!   permutation, overlapping community graphs) — the case the paper's
//!   row reordering is built for.
//!
//! Every generator is deterministic given its seed, so experiments are
//! reproducible bit-for-bit.

#![warn(missing_docs)]

pub mod corpus;
pub mod generators;

pub use corpus::{Corpus, CorpusMatrix, CorpusProfile, MatrixClass};
