//! Corpus builder: a seeded set of matrices standing in for the paper's
//! 1084 SuiteSparse / Network Repository matrices.
//!
//! The corpus mixes the three regimes the paper's analysis (§4, Fig 9)
//! distinguishes — already-clustered, scattered, and recoverable — in
//! proportions similar to what the paper reports (351 of 1084 matrices
//! had < 1 % of nonzeros in dense tiles; 416 of 1084 needed at least one
//! reordering round).

use crate::generators as gen;
use serde::{Deserialize, Serialize};
use spmm_sparse::{CsrMatrix, Scalar};

/// Structural class of a corpus matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatrixClass {
    /// Uniform random — extremely scattered (Fig 7b regime).
    Scattered,
    /// Chung–Lu power-law graph.
    PowerLaw,
    /// R-MAT graph (Graph500 parameters).
    RMat,
    /// Random matrix confined to a diagonal band.
    Banded,
    /// 5-point 2-D Laplacian stencil.
    Stencil,
    /// Block-diagonal, rows grouped — already well clustered (Fig 7a).
    Clustered,
    /// Block-diagonal with rows randomly shuffled — recoverable by RR.
    ShuffledClustered,
    /// Shuffled clusters plus per-row uniform noise.
    NoisyClustered,
    /// Pure diagonal.
    Diagonal,
    /// Bipartite user × item ratings (collaborative filtering).
    BipartiteCf,
}

impl MatrixClass {
    /// All classes, in a fixed order.
    pub const ALL: [MatrixClass; 10] = [
        MatrixClass::Scattered,
        MatrixClass::PowerLaw,
        MatrixClass::RMat,
        MatrixClass::Banded,
        MatrixClass::Stencil,
        MatrixClass::Clustered,
        MatrixClass::ShuffledClustered,
        MatrixClass::NoisyClustered,
        MatrixClass::Diagonal,
        MatrixClass::BipartiteCf,
    ];

    /// Short lowercase label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            MatrixClass::Scattered => "scattered",
            MatrixClass::PowerLaw => "powerlaw",
            MatrixClass::RMat => "rmat",
            MatrixClass::Banded => "banded",
            MatrixClass::Stencil => "stencil",
            MatrixClass::Clustered => "clustered",
            MatrixClass::ShuffledClustered => "shuffled",
            MatrixClass::NoisyClustered => "noisy",
            MatrixClass::Diagonal => "diagonal",
            MatrixClass::BipartiteCf => "cf",
        }
    }
}

/// Size/count profile of the generated corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorpusProfile {
    /// Tiny matrices (~0.5–2 K rows) for unit/integration tests.
    Quick,
    /// The default experiment corpus: 26 matrices, mostly ≥ 10 K
    /// rows/columns (the paper's selection filter).
    Standard,
    /// 39 matrices at roughly twice the Standard dimensions.
    Large,
}

impl CorpusProfile {
    /// Multiplier applied to base dimensions. Standard and Large put
    /// most matrices at ≥ 10 K rows/columns, matching the paper's
    /// SuiteSparse/NetworkRepository selection filter — below that the
    /// dense operand fits in the P100's L2 and no data-movement
    /// technique can matter.
    fn scale(self) -> usize {
        match self {
            CorpusProfile::Quick => 1,
            CorpusProfile::Standard => 10,
            CorpusProfile::Large => 20,
        }
    }

    /// Number of seed-variants generated per parameter set.
    fn variants(self) -> u64 {
        match self {
            CorpusProfile::Quick => 1,
            CorpusProfile::Standard => 2,
            CorpusProfile::Large => 3,
        }
    }
}

/// One corpus entry: a named matrix with its class.
#[derive(Debug, Clone)]
pub struct CorpusMatrix<T> {
    /// Unique name, e.g. `shuffled-b16x128-v0`.
    pub name: String,
    /// Structural class.
    pub class: MatrixClass,
    /// The matrix itself.
    pub matrix: CsrMatrix<T>,
}

/// A generated corpus of matrices.
#[derive(Debug, Clone)]
pub struct Corpus<T> {
    /// All entries, in deterministic order.
    pub matrices: Vec<CorpusMatrix<T>>,
}

impl<T: Scalar> Corpus<T> {
    /// Generates the corpus for a profile. Deterministic in `seed`.
    pub fn generate(profile: CorpusProfile, seed: u64) -> Self {
        let s = profile.scale();
        let variants = profile.variants();
        let mut matrices = Vec::new();
        let mut push = |name: String, class: MatrixClass, m: CsrMatrix<T>| {
            matrices.push(CorpusMatrix {
                name,
                class,
                matrix: m,
            });
        };

        for v in 0..variants {
            let vs = seed.wrapping_mul(0x100_0000).wrapping_add(v);
            // -- scattered ------------------------------------------------
            push(
                format!("scattered-{}x{}-v{v}", 1024 * s, 1024 * s),
                MatrixClass::Scattered,
                gen::uniform_random(1024 * s, 1024 * s, 12, vs ^ 0x01),
            );
            push(
                format!("scattered-wide-{}x{}-v{v}", 512 * s, 2048 * s),
                MatrixClass::Scattered,
                gen::uniform_random(512 * s, 2048 * s, 16, vs ^ 0x02),
            );
            // -- power law ------------------------------------------------
            push(
                format!("powerlaw-{}-v{v}", 1024 * s),
                MatrixClass::PowerLaw,
                gen::power_law(1024 * s, 1024 * s, 16 * 1024 * s, 0.75, vs ^ 0x03),
            );
            push(
                format!("powerlaw-heavy-{}-v{v}", 768 * s),
                MatrixClass::PowerLaw,
                gen::power_law(768 * s, 768 * s, 20 * 768 * s, 0.95, vs ^ 0x04),
            );
            // -- rmat -----------------------------------------------------
            let scale_bits = 10 + s.ilog2();
            push(
                format!("rmat-s{scale_bits}-v{v}"),
                MatrixClass::RMat,
                gen::rmat(scale_bits, 12, (0.57, 0.19, 0.19, 0.05), vs ^ 0x05),
            );
            // -- banded / stencil ----------------------------------------
            push(
                format!("banded-{}-v{v}", 1024 * s),
                MatrixClass::Banded,
                gen::banded(1024 * s, 24, 10, vs ^ 0x06),
            );
            push(
                format!("stencil-{}x{}-v{v}", 32 * s, 32 * s),
                MatrixClass::Stencil,
                gen::laplacian_2d(32 * s, 32 * s),
            );
            // -- clustered family ----------------------------------------
            push(
                format!("clustered-b{}x{}-v{v}", 16 * s, 64),
                MatrixClass::Clustered,
                gen::block_diagonal(16 * s, 64, 96, 24, vs ^ 0x07),
            );
            // many small blocks: after shuffling, panels draw rows from
            // mostly distinct blocks, so the dense ratio collapses and
            // only reordering can recover it
            push(
                format!("shuffled-b{}x{}-v{v}", 64 * s, 16),
                MatrixClass::ShuffledClustered,
                gen::shuffled_block_diagonal(64 * s, 16, 48, 16, vs ^ 0x08),
            );
            push(
                format!("shuffled-small-b{}x{}-v{v}", 128 * s, 8),
                MatrixClass::ShuffledClustered,
                gen::shuffled_block_diagonal(128 * s, 8, 32, 10, vs ^ 0x09),
            );
            push(
                format!("noisy-b{}x{}-v{v}", 16 * s, 64),
                MatrixClass::NoisyClustered,
                gen::noisy_shuffled_clusters(16 * s, 64, 96, 20, 4, vs ^ 0x0a),
            );
            // -- degenerate ----------------------------------------------
            push(
                format!("diagonal-{}-v{v}", 1024 * s),
                MatrixClass::Diagonal,
                gen::diagonal(1024 * s, vs ^ 0x0b),
            );
            // -- collaborative filtering ---------------------------------
            push(
                format!("cf-{}x{}-v{v}", 1024 * s, 512 * s),
                MatrixClass::BipartiteCf,
                gen::bipartite_cf(1024 * s, 512 * s, 12, 0.8, vs ^ 0x0c),
            );
        }
        Self { matrices }
    }

    /// Number of matrices in the corpus.
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// `true` if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// Iterates over entries.
    pub fn iter(&self) -> impl Iterator<Item = &CorpusMatrix<T>> {
        self.matrices.iter()
    }

    /// Entries of one structural class.
    pub fn of_class(&self, class: MatrixClass) -> impl Iterator<Item = &CorpusMatrix<T>> {
        self.matrices.iter().filter(move |m| m.class == class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_corpus_is_deterministic_and_covers_classes() {
        let a = Corpus::<f32>::generate(CorpusProfile::Quick, 1);
        let b = Corpus::<f32>::generate(CorpusProfile::Quick, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.matrix, y.matrix);
        }
        for class in MatrixClass::ALL {
            assert!(a.of_class(class).count() > 0, "missing class {:?}", class);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::<f32>::generate(CorpusProfile::Quick, 1);
        let b = Corpus::<f32>::generate(CorpusProfile::Quick, 2);
        let differing = a
            .iter()
            .zip(b.iter())
            .filter(|(x, y)| x.matrix != y.matrix)
            .count();
        assert!(differing > a.len() / 2);
    }

    #[test]
    fn names_are_unique() {
        let c = Corpus::<f32>::generate(CorpusProfile::Standard, 3);
        let mut names: Vec<&str> = c.iter().map(|m| m.name.as_str()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn standard_profile_scales_up() {
        let q = Corpus::<f32>::generate(CorpusProfile::Quick, 1);
        let s = Corpus::<f32>::generate(CorpusProfile::Standard, 1);
        assert!(s.len() > q.len());
        let qmax = q.iter().map(|m| m.matrix.nrows()).max().unwrap();
        let smax = s.iter().map(|m| m.matrix.nrows()).max().unwrap();
        assert!(smax > qmax);
    }

    #[test]
    fn all_matrices_nonempty() {
        let c = Corpus::<f32>::generate(CorpusProfile::Quick, 5);
        for m in c.iter() {
            assert!(m.matrix.nnz() > 0, "{} is empty", m.name);
            assert!(m.matrix.nrows() > 0);
        }
    }

    #[test]
    fn class_labels_are_unique() {
        let mut labels: Vec<&str> = MatrixClass::ALL.iter().map(|c| c.label()).collect();
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }
}
