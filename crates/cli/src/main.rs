//! `spmm-rr` — command-line front end for the ASpT-RR pipeline.
//!
//! ```text
//! spmm-rr analyze  <matrix.mtx> [--k N] [--device p100|v100]
//! spmm-rr profile  <matrix.mtx> [--k N] [--device p100|v100] [--json]
//! spmm-rr reorder  <in.mtx> --out <out.mtx> [--order <order.txt>]
//! spmm-rr bench    <matrix.mtx> [--k N] [--device p100|v100]
//! spmm-rr generate <class> --out <out.mtx> [--seed N] [--scale N]
//! spmm-rr plan     <save|load|verify> <matrix.mtx> --store <dir>
//! spmm-rr plan     gc --store <dir> [--keep N]
//! spmm-rr serve-bench [--requests N] [--concurrency N] [--workers N]
//!                     [--cache N] [--zipf S] [--seed N] [--k N]
//!                     [--plan-store DIR] [--shards N] [--deltas]
//!                     [--json]
//! spmm-rr chaos-bench [--requests N] [--concurrency N] [--workers N]
//!                     [--faults "point:action@hits,..."] [--shards N]
//!                     [--deltas] [--json]
//! ```
//!
//! `analyze` prints structure statistics, the Fig 5 pipeline decisions
//! and the simulated variant comparison; `profile` runs the pipeline
//! with telemetry enabled and prints the per-stage run manifest (the
//! stage tree, or the raw manifest JSON with `--json`); `reorder`
//! writes the reordered matrix (and optionally the row order) for use
//! in other tools; `bench` runs the §4 trial and recommends a variant;
//! `generate` writes one of the synthetic corpus classes as Matrix
//! Market; `plan` snapshots (`save`), restores (`load`) or checks
//! (`verify`) a prepared engine in a fingerprint-keyed on-disk plan
//! store, so a later process warm-starts without re-running the Fig 5
//! preprocessing, and garbage-collects old epochs (`gc`, keeping the
//! `--keep` newest plan files); `serve-bench` drives the plan-cached
//! serving layer with a Zipf-popular workload and prints throughput,
//! latency percentiles, the plan-cache hit rate and the hit/cold probe
//! outcomes (the run manifest JSON with `--json`); with `--plan-store`
//! it also runs the warm-start probe (stored plans must be bit-exact
//! and >= 10x faster to load than to prepare); with `--shards N` it
//! drives a rendezvous-routed fleet of N engines over a shared store
//! tier and runs the kill-failover probe (bit-exact answers, zero
//! duplicate prepares); with `--deltas` it runs the structural-delta
//! probe (incremental `apply_delta` must answer bit-identically to a
//! from-scratch prepare of the patched matrix, at least 3x faster on
//! a <= 1%-nnz delta); `chaos-bench` replays seeded fault schedules
//! against the serving layer (sharded with `--shards N`) and verifies
//! every success bit-for-bit against the sequential reference; with
//! `--deltas` a mutator thread chains live structural deltas through
//! the epoch-swapped plan cache while the stream runs — the schedule
//! can kill a delta mid-flight at `kernel.delta`, `serve.cache.delta`
//! or `serve.store.delta`, and a failed delta must leave the old
//! epoch fully serveable.

use spmm_cli::{run, Invocation};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Invocation::parse(&args) {
        Ok(inv) => match run(&inv) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{}", spmm_cli::USAGE);
            ExitCode::from(2)
        }
    }
}
