//! Library half of the `spmm-rr` CLI: argument parsing and command
//! execution, kept out of `main.rs` so every path is unit-testable.

#![warn(missing_docs)]

use spmm_core::prelude::*;
use spmm_core::sparse::mm_io;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Usage text shared by `main` and error paths.
pub const USAGE: &str = "\
usage:
  spmm-rr analyze  <matrix.mtx> [--k N] [--device p100|v100]
  spmm-rr profile  <matrix.mtx> [--k N] [--device p100|v100] [--json]
  spmm-rr reorder  <in.mtx> --out <out.mtx> [--order <order.txt>]
  spmm-rr bench    <matrix.mtx> [--k N] [--device p100|v100]
  spmm-rr generate <class> --out <out.mtx> [--seed N] [--scale N]
      classes: scattered powerlaw rmat banded stencil clustered
               shuffled noisy diagonal cf
  spmm-rr plan     <save|load|verify> <matrix.mtx> --store <dir>
  spmm-rr plan     gc --store <dir> [--keep N]
  spmm-rr microbench [--k N] [--reps N] [--seed N] [--json]
  spmm-rr formatbench [--k N] [--reps N] [--seed N] [--json]
  spmm-rr serve-bench [--requests N] [--concurrency N] [--workers N]
                      [--cache N] [--zipf S] [--seed N] [--k N] [--json]
                      [--op spmm|spmv|spgemm] [--batch]
                      [--max-batch-k N] [--k-block N] [--plan-store DIR]
                      [--shards N] [--deltas]
  spmm-rr chaos-bench [--requests N] [--concurrency N] [--workers N]
                      [--cache N] [--zipf S] [--seed N] [--k N] [--json]
                      [--faults \"point:action@hits,...\"] [--batch]
                      [--plan-store DIR] [--shards N] [--deltas]
      actions: error panic delay:<ms>ms    hits: N every:N N..M *
      points:  kernel.prepare kernel.execute kernel.delta
               reorder.round1 reorder.round2 serve.cache.prepare
               serve.cache.delta serve.worker serve.store.load
               serve.store.save serve.store.delta serve.router.route";

/// One allowed flag of a subcommand: name (without `--`) and whether it
/// consumes a value.
type FlagSpec = (&'static str, bool);

/// The flags each subcommand accepts; anything else is rejected with a
/// targeted error instead of being silently ignored.
fn flag_spec(cmd: &str) -> Option<&'static [FlagSpec]> {
    match cmd {
        "analyze" | "bench" => Some(&[("k", true), ("device", true)]),
        "profile" => Some(&[("k", true), ("device", true), ("json", false)]),
        "reorder" => Some(&[("out", true), ("order", true)]),
        "generate" => Some(&[("out", true), ("seed", true), ("scale", true)]),
        "plan" => Some(&[("store", true), ("keep", true)]),
        "microbench" | "formatbench" => {
            Some(&[("k", true), ("reps", true), ("seed", true), ("json", false)])
        }
        "serve-bench" => Some(&[
            ("requests", true),
            ("concurrency", true),
            ("workers", true),
            ("cache", true),
            ("zipf", true),
            ("seed", true),
            ("k", true),
            ("op", true),
            ("json", false),
            ("batch", false),
            ("max-batch-k", true),
            ("k-block", true),
            ("plan-store", true),
            ("shards", true),
            ("deltas", false),
        ]),
        "chaos-bench" => Some(&[
            ("requests", true),
            ("concurrency", true),
            ("workers", true),
            ("cache", true),
            ("zipf", true),
            ("seed", true),
            ("k", true),
            ("faults", true),
            ("json", false),
            ("batch", false),
            ("plan-store", true),
            ("shards", true),
            ("deltas", false),
        ]),
        _ => None,
    }
}

/// A parsed command-line invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Invocation {
    /// `analyze <path> [--k N] [--device D]`
    Analyze {
        /// Matrix Market input path.
        path: PathBuf,
        /// Dense-operand width.
        k: usize,
        /// Simulated device name (`p100` / `v100`).
        device: String,
    },
    /// `profile <path> [--k N] [--device D] [--json]`
    Profile {
        /// Matrix Market input path.
        path: PathBuf,
        /// Dense-operand width.
        k: usize,
        /// Simulated device name (`p100` / `v100`).
        device: String,
        /// Emit the raw run-manifest JSON instead of the stage tree.
        json: bool,
    },
    /// `reorder <in> --out <out> [--order <path>]`
    Reorder {
        /// Input path.
        input: PathBuf,
        /// Output matrix path.
        out: PathBuf,
        /// Optional path to write the row order (one original index per
        /// line, in new order).
        order: Option<PathBuf>,
    },
    /// `bench <path> [--k N] [--device D]`
    Bench {
        /// Matrix Market input path.
        path: PathBuf,
        /// Dense-operand width.
        k: usize,
        /// Simulated device name.
        device: String,
    },
    /// `generate <class> --out <out> [--seed N] [--scale N]`
    Generate {
        /// Corpus class label.
        class: String,
        /// Output path.
        out: PathBuf,
        /// Generator seed.
        seed: u64,
        /// Size scale multiplier.
        scale: usize,
    },
    /// `plan <save|load|verify> <matrix.mtx> --store <dir>` —
    /// persist, re-materialise or validate a preprocessing plan in a
    /// fingerprint-keyed [`PlanStore`].
    Plan {
        /// One of `save`, `load` or `verify` (validated at parse time).
        action: String,
        /// Matrix Market input path (fingerprinted to key the store).
        path: PathBuf,
        /// Plan-store directory.
        store: PathBuf,
    },
    /// `plan gc --store <dir> [--keep N]` — delete all but the
    /// `keep` most recently written plan files from the store, so a
    /// long-lived store (epoch-versioned delta files included) does
    /// not grow without bound.
    PlanGc {
        /// Plan-store directory.
        store: PathBuf,
        /// How many of the newest plan files survive.
        keep: usize,
    },
    /// `microbench [--k N] [--reps N] [--seed N] [--json]` — time the
    /// generic k-blocked ASpT SpMM kernel against the monomorphized
    /// microkernels on the Quick corpus, one row per specialized width.
    Microbench {
        /// Total dense-operand width swept by the blocked passes.
        k: usize,
        /// Timing repetitions per kernel (the best rep is kept).
        reps: usize,
        /// Corpus and operand seed.
        seed: u64,
        /// Emit the run-manifest JSON instead of the table.
        json: bool,
    },
    /// `formatbench [--k N] [--reps N] [--seed N] [--json]` — run the
    /// plan-time format trial over every Quick-corpus class and report,
    /// per class, the simulated speedup of the chosen format over the
    /// incumbent CSR/ASpT configuration (≥ 1 by construction: the trial
    /// never adopts a regressing format).
    Formatbench {
        /// Dense-operand width the trial is ranked at.
        k: usize,
        /// Timing repetitions per kernel for the wall-clock columns.
        reps: usize,
        /// Corpus and operand seed.
        seed: u64,
        /// Emit the run-manifest JSON instead of the table.
        json: bool,
    },
    /// `serve-bench [--requests N] [--concurrency N] [--workers N]
    /// [--cache N] [--zipf S] [--seed N] [--k N] [--json]
    /// [--plan-store DIR]`
    ServeBench {
        /// The benchmark workload configuration.
        config: ServeBenchConfig,
        /// Emit the run-manifest JSON instead of the summary.
        json: bool,
    },
    /// `chaos-bench [--requests N] [--concurrency N] [--workers N]
    /// [--cache N] [--zipf S] [--seed N] [--k N] [--faults SPEC]
    /// [--json]`
    ChaosBench {
        /// The chaos workload configuration (including the optional
        /// fault schedule).
        config: ChaosBenchConfig,
        /// Emit the run-manifest JSON instead of the summary.
        json: bool,
    },
}

impl Invocation {
    /// Parses an argument vector (without the program name).
    ///
    /// Flags are checked against the subcommand's allowlist: an
    /// unknown `--flag` is a targeted error naming the command and its
    /// valid flags, not a silent no-op.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter();
        let cmd = it.next().ok_or("missing command")?;
        let spec = flag_spec(cmd).ok_or_else(|| format!("unknown command '{cmd}'"))?;
        let mut positional: Vec<String> = Vec::new();
        let mut flags: std::collections::HashMap<String, String> = std::collections::HashMap::new();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let (_, takes_value) = spec.iter().find(|(n, _)| *n == name).ok_or_else(|| {
                    let valid: Vec<String> = spec.iter().map(|(n, _)| format!("--{n}")).collect();
                    format!(
                        "unknown flag --{name} for '{cmd}' (valid flags: {})",
                        valid.join(", ")
                    )
                })?;
                if *takes_value {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    flags.insert(name.to_string(), v.clone());
                } else {
                    flags.insert(name.to_string(), "true".to_string());
                }
            } else {
                positional.push(a.clone());
            }
        }
        let get_k = |flags: &std::collections::HashMap<String, String>| -> Result<usize, String> {
            match flags.get("k") {
                Some(v) => v.parse().map_err(|_| format!("bad --k value '{v}'")),
                None => Ok(256),
            }
        };
        let get_device =
            |flags: &std::collections::HashMap<String, String>| -> Result<String, String> {
                let d = flags
                    .get("device")
                    .cloned()
                    .unwrap_or_else(|| "p100".into());
                if d != "p100" && d != "v100" {
                    return Err(format!("unknown device '{d}' (p100 or v100)"));
                }
                Ok(d)
            };
        match cmd.as_str() {
            "analyze" | "bench" => {
                let path = positional.first().ok_or("missing matrix path")?.into();
                let inv = if cmd == "analyze" {
                    Invocation::Analyze {
                        path,
                        k: get_k(&flags)?,
                        device: get_device(&flags)?,
                    }
                } else {
                    Invocation::Bench {
                        path,
                        k: get_k(&flags)?,
                        device: get_device(&flags)?,
                    }
                };
                Ok(inv)
            }
            "profile" => Ok(Invocation::Profile {
                path: positional.first().ok_or("missing matrix path")?.into(),
                k: get_k(&flags)?,
                device: get_device(&flags)?,
                json: flags.contains_key("json"),
            }),
            "reorder" => Ok(Invocation::Reorder {
                input: positional.first().ok_or("missing input path")?.into(),
                out: flags.get("out").ok_or("reorder requires --out")?.into(),
                order: flags.get("order").map(PathBuf::from),
            }),
            "generate" => Ok(Invocation::Generate {
                class: positional.first().ok_or("missing class")?.clone(),
                out: flags.get("out").ok_or("generate requires --out")?.into(),
                seed: match flags.get("seed") {
                    Some(v) => v.parse().map_err(|_| format!("bad --seed '{v}'"))?,
                    None => 42,
                },
                scale: match flags.get("scale") {
                    Some(v) => v.parse().map_err(|_| format!("bad --scale '{v}'"))?,
                    None => 4,
                },
            }),
            "plan" => {
                let action = positional
                    .first()
                    .ok_or("missing plan action (save, load, verify or gc)")?
                    .clone();
                if action == "gc" {
                    return Ok(Invocation::PlanGc {
                        store: flags.get("store").ok_or("plan requires --store")?.into(),
                        keep: match flags.get("keep") {
                            Some(v) => v.parse().map_err(|_| format!("bad --keep value '{v}'"))?,
                            None => 8,
                        },
                    });
                }
                if !matches!(action.as_str(), "save" | "load" | "verify") {
                    return Err(format!(
                        "unknown plan action '{action}' (save, load, verify or gc)"
                    ));
                }
                if flags.contains_key("keep") {
                    return Err("--keep is only valid for 'plan gc'".into());
                }
                Ok(Invocation::Plan {
                    action,
                    path: positional.get(1).ok_or("missing matrix path")?.into(),
                    store: flags.get("store").ok_or("plan requires --store")?.into(),
                })
            }
            "microbench" | "formatbench" => {
                let parse = |name: &str, default: usize| -> Result<usize, String> {
                    match flags.get(name) {
                        Some(v) => v.parse().map_err(|_| format!("bad --{name} value '{v}'")),
                        None => Ok(default),
                    }
                };
                let k = parse("k", 96)?;
                if k == 0 {
                    return Err("bad --k value '0' (need at least one column)".into());
                }
                let reps = parse("reps", 5)?.max(1);
                let seed = match flags.get("seed") {
                    Some(v) => v.parse().map_err(|_| format!("bad --seed value '{v}'"))?,
                    None => 42,
                };
                let json = flags.contains_key("json");
                Ok(if cmd == "microbench" {
                    Invocation::Microbench {
                        k,
                        reps,
                        seed,
                        json,
                    }
                } else {
                    Invocation::Formatbench {
                        k,
                        reps,
                        seed,
                        json,
                    }
                })
            }
            "serve-bench" => {
                let mut config = ServeBenchConfig::default();
                let parse_usize = |flags: &std::collections::HashMap<String, String>,
                                   name: &str,
                                   default: usize|
                 -> Result<usize, String> {
                    match flags.get(name) {
                        Some(v) => v.parse().map_err(|_| format!("bad --{name} value '{v}'")),
                        None => Ok(default),
                    }
                };
                config.requests = parse_usize(&flags, "requests", config.requests)?;
                config.concurrency = parse_usize(&flags, "concurrency", config.concurrency)?;
                config.workers = parse_usize(&flags, "workers", config.workers)?;
                config.cache_capacity = parse_usize(&flags, "cache", config.cache_capacity)?;
                config.k = parse_usize(&flags, "k", config.k)?;
                if let Some(v) = flags.get("zipf") {
                    config.zipf_s = v.parse().map_err(|_| format!("bad --zipf value '{v}'"))?;
                }
                if let Some(v) = flags.get("seed") {
                    config.seed = v.parse().map_err(|_| format!("bad --seed value '{v}'"))?;
                }
                if let Some(v) = flags.get("op") {
                    config.op = v.parse().map_err(|e| format!("bad --op value: {e}"))?;
                }
                let batching = flags.contains_key("batch")
                    || flags.contains_key("max-batch-k")
                    || flags.contains_key("k-block");
                if batching {
                    let mut batch = BatchConfig::default();
                    if let Some(v) = flags.get("max-batch-k") {
                        batch = batch.max_batch_k(
                            v.parse()
                                .map_err(|_| format!("bad --max-batch-k value '{v}'"))?,
                        );
                    }
                    if let Some(v) = flags.get("k-block") {
                        let kb: usize = v
                            .parse()
                            .map_err(|_| format!("bad --k-block value '{v}'"))?;
                        if kb == 0 {
                            return Err(
                                "bad --k-block value '0' (need a block of at least one column)"
                                    .into(),
                            );
                        }
                        batch = batch.k_block(kb);
                    }
                    config.batch = Some(batch);
                }
                if let Some(v) = flags.get("plan-store") {
                    config.plan_store = Some(PathBuf::from(v));
                }
                config.shards = parse_usize(&flags, "shards", config.shards)?;
                if config.shards == 0 {
                    return Err("bad --shards value '0' (need at least one shard)".into());
                }
                config.deltas = flags.contains_key("deltas");
                Ok(Invocation::ServeBench {
                    config,
                    json: flags.contains_key("json"),
                })
            }
            "chaos-bench" => {
                let mut config = ChaosBenchConfig::default();
                let parse_usize = |flags: &std::collections::HashMap<String, String>,
                                   name: &str,
                                   default: usize|
                 -> Result<usize, String> {
                    match flags.get(name) {
                        Some(v) => v.parse().map_err(|_| format!("bad --{name} value '{v}'")),
                        None => Ok(default),
                    }
                };
                config.requests = parse_usize(&flags, "requests", config.requests)?;
                config.concurrency = parse_usize(&flags, "concurrency", config.concurrency)?;
                config.workers = parse_usize(&flags, "workers", config.workers)?;
                config.cache_capacity = parse_usize(&flags, "cache", config.cache_capacity)?;
                config.k = parse_usize(&flags, "k", config.k)?;
                if let Some(v) = flags.get("zipf") {
                    config.zipf_s = v.parse().map_err(|_| format!("bad --zipf value '{v}'"))?;
                }
                if let Some(v) = flags.get("seed") {
                    config.seed = v.parse().map_err(|_| format!("bad --seed value '{v}'"))?;
                }
                config.faults = flags.get("faults").cloned();
                if flags.contains_key("batch") {
                    config.batch = Some(BatchConfig::default());
                }
                if let Some(v) = flags.get("plan-store") {
                    config.plan_store = Some(PathBuf::from(v));
                }
                config.shards = parse_usize(&flags, "shards", config.shards)?;
                if config.shards == 0 {
                    return Err("bad --shards value '0' (need at least one shard)".into());
                }
                config.deltas = flags.contains_key("deltas");
                Ok(Invocation::ChaosBench {
                    config,
                    json: flags.contains_key("json"),
                })
            }
            other => Err(format!("unknown command '{other}'")),
        }
    }
}

fn device_by_name(name: &str) -> DeviceConfig {
    if name == "v100" {
        DeviceConfig::v100()
    } else {
        DeviceConfig::p100()
    }
}

/// Builds a synthetic matrix by class label (scaled from the corpus
/// base dimensions).
pub fn generate_matrix(class: &str, scale: usize, seed: u64) -> Result<CsrMatrix<f32>, String> {
    let s = scale.max(1);
    Ok(match class {
        "scattered" => generators::uniform_random(1024 * s, 1024 * s, 12, seed),
        "powerlaw" => generators::power_law(1024 * s, 1024 * s, 16 * 1024 * s, 0.75, seed),
        "rmat" => generators::rmat(10 + s.ilog2(), 12, (0.57, 0.19, 0.19, 0.05), seed),
        "banded" => generators::banded(1024 * s, 24, 10, seed),
        "stencil" => generators::laplacian_2d(32 * s, 32 * s),
        "clustered" => generators::block_diagonal(16 * s, 64, 96, 24, seed),
        "shuffled" => generators::shuffled_block_diagonal(64 * s, 16, 48, 16, seed),
        "noisy" => generators::noisy_shuffled_clusters(16 * s, 64, 96, 20, 4, seed),
        "diagonal" => generators::diagonal(1024 * s, seed),
        "cf" => generators::bipartite_cf(1024 * s, 512 * s, 12, 0.8, seed),
        other => return Err(format!("unknown class '{other}'")),
    })
}

/// Executes an invocation, returning the textual report.
pub fn run(inv: &Invocation) -> Result<String, String> {
    match inv {
        Invocation::Analyze { path, k, device } => {
            let m: CsrMatrix<f32> =
                mm_io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
            analyze(&m, *k, &device_by_name(device))
        }
        Invocation::Profile {
            path,
            k,
            device,
            json,
        } => {
            let m: CsrMatrix<f32> =
                mm_io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
            let mut p = profile(&m, *k, &device_by_name(device), *json)?;
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                if !*json {
                    p = format!("# matrix file: {name}\n{p}");
                }
            }
            Ok(p)
        }
        Invocation::Bench { path, k, device } => {
            let m: CsrMatrix<f32> =
                mm_io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
            bench(&m, *k, &device_by_name(device))
        }
        Invocation::Reorder { input, out, order } => {
            let m: CsrMatrix<f32> =
                mm_io::read_matrix_market_file(input).map_err(|e| e.to_string())?;
            let plan = plan_reordering(&m, &ReorderConfig::default());
            let reordered = m.permute_rows(&plan.row_perm);
            mm_io::write_matrix_market_file(&reordered, out).map_err(|e| e.to_string())?;
            if let Some(order_path) = order {
                let mut txt = String::new();
                for &o in plan.row_perm.order() {
                    let _ = writeln!(txt, "{o}");
                }
                std::fs::write(order_path, txt).map_err(|e| e.to_string())?;
            }
            Ok(format!(
                "reordered {} rows (round1 {}, round2 {}); dense ratio {:.3} -> {:.3}; wrote {}",
                m.nrows(),
                plan.round1_applied,
                plan.round2_applied,
                plan.dense_ratio_before,
                plan.dense_ratio_after,
                out.display()
            ))
        }
        Invocation::Generate {
            class,
            out,
            seed,
            scale,
        } => {
            let m = generate_matrix(class, *scale, *seed)?;
            mm_io::write_matrix_market_file(&m, out).map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote {class} matrix {} x {} with {} nonzeros to {}",
                m.nrows(),
                m.ncols(),
                m.nnz(),
                out.display()
            ))
        }
        Invocation::Plan {
            action,
            path,
            store,
        } => {
            let m: CsrMatrix<f32> =
                mm_io::read_matrix_market_file(path).map_err(|e| e.to_string())?;
            let fp = MatrixFingerprint::of(&m);
            let store = PlanStore::open(store).map_err(|e| e.to_string())?;
            match action.as_str() {
                "save" => {
                    let start = std::time::Instant::now();
                    let engine =
                        Engine::prepare(&m, &EngineConfig::default()).map_err(|e| e.to_string())?;
                    let prepared = start.elapsed();
                    let file = store.save(&fp, &engine).map_err(|e| e.to_string())?;
                    Ok(format!(
                        "saved plan {fp} ({:.1} ms prepare) to {}",
                        prepared.as_secs_f64() * 1e3,
                        file.display()
                    ))
                }
                "load" => {
                    let start = std::time::Instant::now();
                    let engine = store
                        .load::<f32>(&fp, &TelemetryHandle::noop())
                        .map_err(|e| e.to_string())?
                        .ok_or_else(|| {
                            format!("no stored plan for {fp} in {}", store.root().display())
                        })?;
                    let loaded = start.elapsed();
                    Ok(format!(
                        "loaded plan {fp} in {:.1} ms ({} rows, {} nonzeros, reordering {}, {}, zero preprocessing)",
                        loaded.as_secs_f64() * 1e3,
                        m.nrows(),
                        m.nnz(),
                        if engine.plan().needs_reordering() {
                            "applied"
                        } else {
                            "skipped"
                        },
                        plan_choices(&engine),
                    ))
                }
                "verify" => match store.load::<f32>(&fp, &TelemetryHandle::noop()) {
                    Ok(Some(engine)) => Ok(format!(
                        "plan {fp} verifies: header, section checksums and fingerprint all match ({}) ({})",
                        plan_choices(&engine),
                        store.path_for::<f32>(&fp).display()
                    )),
                    Ok(None) => Err(format!(
                        "no stored plan for {fp} in {}",
                        store.root().display()
                    )),
                    Err(e) => Err(format!("stored plan for {fp} is invalid: {e}")),
                },
                other => Err(format!("unknown plan action '{other}'")),
            }
        }
        Invocation::PlanGc { store, keep } => {
            let store = PlanStore::open(store).map_err(|e| e.to_string())?;
            let deleted = store.gc(*keep).map_err(|e| e.to_string())?;
            let survivors = store.list().map_err(|e| e.to_string())?.len();
            let mut out = format!(
                "plan gc: deleted {} plan file(s), kept the {} newest ({} on disk)\n",
                deleted.len(),
                keep,
                survivors
            );
            for path in &deleted {
                let _ = writeln!(out, "  removed {}", path.display());
            }
            Ok(out)
        }
        Invocation::Microbench {
            k,
            reps,
            seed,
            json,
        } => microbench(*k, *reps, *seed, *json),
        Invocation::Formatbench {
            k,
            reps,
            seed,
            json,
        } => formatbench(*k, *reps, *seed, *json),
        Invocation::ServeBench { config, json } => {
            let report = run_serve_bench(config).map_err(|e| e.to_string())?;
            if !report.probes_passed() {
                return Err(format!("serve-bench probes failed:\n{}", report.render()));
            }
            if *json {
                Ok(report.manifest.to_json(true))
            } else {
                Ok(report.render())
            }
        }
        Invocation::ChaosBench { config, json } => {
            let report = run_chaos_bench(config).map_err(|e| e.to_string())?;
            if !report.all_successes_exact() {
                return Err(format!(
                    "chaos-bench exactness contract failed:\n{}",
                    report.render()
                ));
            }
            if *json {
                Ok(report.manifest.to_json(true))
            } else {
                Ok(report.render())
            }
        }
    }
}

/// The `analyze` report body.
///
/// # Errors
/// Fails when `m` violates the CSR invariants.
pub fn analyze(m: &CsrMatrix<f32>, k: usize, device: &DeviceConfig) -> Result<String, String> {
    use spmm_core::sparse::stats::MatrixStats;
    let stats = MatrixStats::compute(m);
    let engine = Engine::prepare(m, &EngineConfig::default()).map_err(|e| e.to_string())?;
    let plan = engine.plan();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "matrix: {} x {}, {} nonzeros (density {:.2e})",
        stats.nrows, stats.ncols, stats.nnz, stats.density
    );
    let _ = writeln!(
        out,
        "rows: avg {:.1} nnz, max {}, stddev {:.1}, {} empty",
        stats.avg_row_nnz, stats.max_row_nnz, stats.row_nnz_stddev, stats.empty_rows
    );
    let _ = writeln!(
        out,
        "locality: avg consecutive-row similarity {:.3}, avg bandwidth {:.0}",
        stats.avg_consecutive_similarity, stats.avg_bandwidth
    );
    let _ = writeln!(
        out,
        "pipeline: round1 {} (dense ratio {:.3} -> {:.3}), round2 {} (avg sim {:.3} -> {:.3})",
        if plan.round1_applied {
            "applied"
        } else {
            "skipped"
        },
        plan.dense_ratio_before,
        plan.dense_ratio_after,
        if plan.round2_applied {
            "applied"
        } else {
            "skipped"
        },
        plan.avgsim_before,
        plan.avgsim_after,
    );
    let _ = writeln!(
        out,
        "preprocessing: {:.1} ms",
        engine.preprocessing_time().as_secs_f64() * 1e3
    );
    out.push_str(&bench(m, k, device)?);
    Ok(out)
}

/// The `profile` report body: prepares an engine with full telemetry,
/// simulates one SpMM and one SDDMM, and renders the run manifest —
/// the stage tree by default, the raw manifest JSON with `--json`.
///
/// # Errors
/// Fails when `m` violates the CSR invariants.
pub fn profile(
    m: &CsrMatrix<f32>,
    k: usize,
    device: &DeviceConfig,
    json: bool,
) -> Result<String, String> {
    let config = EngineConfig::builder().k_hint(k).build();
    let engine = Engine::prepare(m, &config).map_err(|e| e.to_string())?;
    engine.simulate_spmm(k, device);
    engine.simulate_sddmm(k, device);
    let manifest = engine.manifest();
    if json {
        Ok(manifest.to_json(true))
    } else {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# {} x {}, {} nonzeros; K = {k}, device {}",
            m.nrows(),
            m.ncols(),
            m.nnz(),
            device.name
        );
        let _ = writeln!(
            out,
            "# preprocessing total: {:.3} ms",
            engine.preprocessing_time().as_secs_f64() * 1e3
        );
        out.push_str(&manifest.render_tree());
        Ok(out)
    }
}

/// The `bench` report body: the §4 trial.
///
/// # Errors
/// Fails when `m` violates the CSR invariants.
pub fn bench(m: &CsrMatrix<f32>, k: usize, device: &DeviceConfig) -> Result<String, String> {
    let trial = choose_variant(m, Kernel::Spmm, k, device, &ReorderConfig::default())
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "simulated {} SpMM, K = {k}:", device.name);
    if let Some(c) = &trial.cusparse_like {
        let _ = writeln!(out, "  cuSPARSE-like  {:>9.1} GFLOP/s", c.gflops);
    }
    let _ = writeln!(
        out,
        "  ASpT-NR        {:>9.1} GFLOP/s",
        trial.aspt_nr.gflops
    );
    let _ = writeln!(
        out,
        "  ASpT-RR        {:>9.1} GFLOP/s",
        trial.aspt_rr.gflops
    );
    let _ = writeln!(
        out,
        "recommendation: {:?} (RR vs best other: {:.2}x)",
        trial.chosen,
        trial.rr_speedup_vs_best_other()
    );
    Ok(out)
}

/// The `microbench` report body: the generic k-blocked ASpT SpMM
/// kernel head-to-head against the monomorphized microkernels
/// ([`spmm_aspt_kblocked_auto`]) on the Quick corpus, one row per
/// specialized width. Each matrix's ASpT decomposition and operand are
/// built once outside the timed region, every timed pair is first
/// cross-checked bit-for-bit, and the best of `reps` repetitions is
/// kept per kernel. With `json`, emits the run manifest whose
/// `micro.speedup*` gauges the CI perf-smoke gate reads.
///
/// # Errors
/// Fails when a kernel rejects its operands or a specialized width
/// diverges from the generic result (which would be a bug, not noise).
pub fn microbench(k: usize, reps: usize, seed: u64, json: bool) -> Result<String, String> {
    use std::sync::Arc;
    use std::time::Instant;
    let reps = reps.max(1);
    let corpus = Corpus::<f32>::generate(CorpusProfile::Quick, seed);
    let prepared: Vec<(String, AsptMatrix<f32>, DenseMatrix<f32>)> = corpus
        .iter()
        .enumerate()
        .map(|(i, cm)| {
            let aspt = AsptMatrix::build(&cm.matrix, &AsptConfig::default());
            let x = generators::random_dense::<f32>(cm.matrix.ncols(), k, seed ^ (i as u64 + 1));
            (cm.name.clone(), aspt, x)
        })
        .collect();

    let collector = Arc::new(Collector::new());
    let telemetry = TelemetryHandle::new(collector.clone());
    telemetry.meta("bench", "microbench");
    telemetry.meta("corpus", "quick");
    telemetry.meta("k", &k.to_string());
    telemetry.meta("reps", &reps.to_string());
    telemetry.meta("seed", &seed.to_string());

    let time_best =
        |f: &mut dyn FnMut() -> Result<DenseMatrix<f32>, String>| -> Result<f64, String> {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let y = f()?;
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(&y);
                best = best.min(dt);
            }
            Ok(best)
        };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "microkernel bench: Quick corpus ({} matrices), K = {k}, best of {reps}",
        prepared.len()
    );
    let _ = writeln!(
        out,
        "{:>8}  {:>12}  {:>12}  {:>8}",
        "k_block", "generic (ms)", "micro (ms)", "speedup"
    );
    let mut generic_sum = 0.0f64;
    let mut micro_sum = 0.0f64;
    for &w in MICRO_WIDTHS.iter().filter(|&&w| w <= k) {
        let mut generic_total = 0.0f64;
        let mut micro_total = 0.0f64;
        for (name, aspt, x) in &prepared {
            // the first (untimed) pair doubles as warm-up and as the
            // bit-exactness cross-check
            let yg = spmm_aspt_kblocked(aspt, x, w).map_err(|e| e.to_string())?;
            let ym = spmm_aspt_kblocked_auto(aspt, x, w).map_err(|e| e.to_string())?;
            if yg.data() != ym.data() {
                return Err(format!(
                    "microkernel k_block={w} diverged from the generic kernel on '{name}'"
                ));
            }
            generic_total +=
                time_best(&mut || spmm_aspt_kblocked(aspt, x, w).map_err(|e| e.to_string()))?;
            micro_total +=
                time_best(&mut || spmm_aspt_kblocked_auto(aspt, x, w).map_err(|e| e.to_string()))?;
        }
        let speedup = generic_total / micro_total;
        telemetry.gauge(&format!("micro.generic_s.k{w}"), generic_total);
        telemetry.gauge(&format!("micro.micro_s.k{w}"), micro_total);
        telemetry.gauge(&format!("micro.speedup.k{w}"), speedup);
        generic_sum += generic_total;
        micro_sum += micro_total;
        let _ = writeln!(
            out,
            "{:>8}  {:>12.3}  {:>12.3}  {:>7.2}x",
            w,
            generic_total * 1e3,
            micro_total * 1e3,
            speedup
        );
    }
    if micro_sum == 0.0 {
        return Err(format!(
            "no specialized width fits K = {k} (narrowest microkernel is {})",
            MICRO_WIDTHS[0]
        ));
    }
    let overall = generic_sum / micro_sum;
    telemetry.gauge("micro.speedup", overall);
    let _ = writeln!(out, "overall: {overall:.2}x");
    if json {
        Ok(collector.manifest().to_json(true))
    } else {
        Ok(out)
    }
}

/// What the stored plan executes with, for `plan load` / `plan verify`
/// output: the chosen variant, the physical format and the microkernel
/// width.
fn plan_choices<T: Scalar>(engine: &Engine<T>) -> String {
    let variant = match engine.format_choice() {
        FormatChoice::SellCSigma { .. } => "sell-c-sigma",
        FormatChoice::Csb { .. } => "csb",
        FormatChoice::Csr => {
            if engine.plan().needs_reordering() {
                "aspt-rr"
            } else {
                "aspt-nr"
            }
        }
    };
    format!(
        "variant {variant}, format {}, micro width {}",
        engine.format_choice().label(),
        engine
            .micro_width()
            .map_or_else(|| "generic".to_string(), |w| w.to_string()),
    )
}

/// The `formatbench` report body: run the plan-time format trial
/// ([`choose_format`]) over every Quick-corpus class at width `k` and
/// report, per class, the chosen format and its simulated speedup over
/// the incumbent CSR/ASpT configuration — ≥ 1 by construction, because
/// the trial only adopts strictly faster challengers. Each chosen
/// format's kernel is also cross-checked bit-for-bit against the
/// sequential row-wise reference, and wall-clock columns (best of
/// `reps`) show the measured CPU cost of both paths for context. With
/// `json`, emits the run manifest whose `format.speedup.*` gauges the
/// CI perf-smoke gate reads.
///
/// # Errors
/// Fails when preparation rejects a corpus matrix or a chosen format's
/// kernel diverges from the row-wise reference (a bug, not noise).
pub fn formatbench(k: usize, reps: usize, seed: u64, json: bool) -> Result<String, String> {
    use std::sync::Arc;
    use std::time::Instant;
    let reps = reps.max(1);
    let corpus = Corpus::<f32>::generate(CorpusProfile::Quick, seed);
    let device = DeviceConfig::p100();

    let collector = Arc::new(Collector::new());
    let telemetry = TelemetryHandle::new(collector.clone());
    telemetry.meta("bench", "formatbench");
    telemetry.meta("corpus", "quick");
    telemetry.meta("k", &k.to_string());
    telemetry.meta("reps", &reps.to_string());
    telemetry.meta("seed", &seed.to_string());

    let time_best =
        |f: &mut dyn FnMut() -> Result<DenseMatrix<f32>, String>| -> Result<f64, String> {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let y = f()?;
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(&y);
                best = best.min(dt);
            }
            Ok(best)
        };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "format zoo bench: Quick corpus by class, K = {k}, trial on the simulated transaction model"
    );
    let _ = writeln!(
        out,
        "{:>10}  {:>14}  {:>11}  {:>8}  {:>12}  {:>12}",
        "class", "chosen", "sim speedup", "skipped", "aspt (ms)", "chosen (ms)"
    );
    let mut incumbent_sum = 0.0f64;
    let mut chosen_sum = 0.0f64;
    let mut skipped_total = 0u64;
    for class in MatrixClass::ALL {
        let mut class_incumbent = 0.0f64;
        let mut class_chosen = 0.0f64;
        let mut class_skipped = 0u32;
        let mut chosen_label = String::from("csr");
        let mut aspt_wall = 0.0f64;
        let mut chosen_wall = 0.0f64;
        for cm in corpus.of_class(class) {
            let engine =
                Engine::prepare(&cm.matrix, &EngineConfig::default()).map_err(|e| e.to_string())?;
            let (payload, trial) = choose_format(&engine, k, &device);
            class_incumbent += trial.incumbent.time_s;
            class_chosen += trial
                .candidates
                .iter()
                .map(|(_, r)| r.time_s)
                .fold(trial.incumbent.time_s, f64::min);
            class_skipped += trial.skipped;
            if trial.chosen != FormatChoice::Csr {
                chosen_label = trial.chosen.label();
            }
            let x = generators::random_dense::<f32>(cm.matrix.ncols(), k, seed ^ 0x5eed);
            if let Some(p) = &payload {
                // the winner must agree with the row-wise reference bit
                // for bit before any timing is trusted
                let reference = spmm_rowwise_seq(&cm.matrix, &x).map_err(|e| e.to_string())?;
                let y = p.spmm(&x).map_err(|e| e.to_string())?;
                if y.data() != reference.data() {
                    return Err(format!(
                        "format {} diverged from the row-wise reference on '{}'",
                        trial.chosen, cm.name
                    ));
                }
            }
            let aspt_t = time_best(&mut || engine.spmm(&x).map_err(|e| e.to_string()))?;
            aspt_wall += aspt_t;
            chosen_wall += match &payload {
                Some(p) => time_best(&mut || p.spmm(&x).map_err(|e| e.to_string()))?,
                None => aspt_t,
            };
        }
        let speedup = if class_chosen > 0.0 {
            class_incumbent / class_chosen
        } else {
            1.0
        };
        telemetry.gauge(&format!("format.speedup.{}", class.label()), speedup);
        telemetry.meta(&format!("format.chosen.{}", class.label()), &chosen_label);
        incumbent_sum += class_incumbent;
        chosen_sum += class_chosen;
        skipped_total += u64::from(class_skipped);
        let _ = writeln!(
            out,
            "{:>10}  {:>14}  {:>10.2}x  {:>8}  {:>12.3}  {:>12.3}",
            class.label(),
            chosen_label,
            speedup,
            class_skipped,
            aspt_wall * 1e3,
            chosen_wall * 1e3
        );
    }
    let overall = if chosen_sum > 0.0 {
        incumbent_sum / chosen_sum
    } else {
        1.0
    };
    telemetry.gauge("format.speedup", overall);
    telemetry.counter("tune.format.skipped", skipped_total);
    let _ = writeln!(
        out,
        "overall: {overall:.2}x (skipped candidates: {skipped_total})"
    );
    if json {
        Ok(collector.manifest().to_json(true))
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_analyze_defaults() {
        let inv = Invocation::parse(&s(&["analyze", "m.mtx"])).unwrap();
        assert_eq!(
            inv,
            Invocation::Analyze {
                path: "m.mtx".into(),
                k: 256,
                device: "p100".into()
            }
        );
    }

    #[test]
    fn parse_flags() {
        let inv =
            Invocation::parse(&s(&["bench", "m.mtx", "--k", "512", "--device", "v100"])).unwrap();
        assert_eq!(
            inv,
            Invocation::Bench {
                path: "m.mtx".into(),
                k: 512,
                device: "v100".into()
            }
        );
    }

    #[test]
    fn parse_errors() {
        assert!(Invocation::parse(&[]).is_err());
        assert!(Invocation::parse(&s(&["frobnicate"])).is_err());
        assert!(Invocation::parse(&s(&["analyze"])).is_err());
        assert!(Invocation::parse(&s(&["analyze", "m.mtx", "--k"])).is_err());
        assert!(Invocation::parse(&s(&["analyze", "m.mtx", "--k", "abc"])).is_err());
        assert!(Invocation::parse(&s(&["analyze", "m.mtx", "--device", "h100"])).is_err());
        assert!(Invocation::parse(&s(&["reorder", "m.mtx"])).is_err()); // no --out
        assert!(Invocation::parse(&s(&["generate", "nosuch", "--out", "x.mtx"])).is_ok());
        // class validity is checked at run time:
        assert!(generate_matrix("nosuch", 1, 1).is_err());
    }

    #[test]
    fn parse_profile() {
        let inv = Invocation::parse(&s(&["profile", "m.mtx", "--k", "64", "--json"])).unwrap();
        assert_eq!(
            inv,
            Invocation::Profile {
                path: "m.mtx".into(),
                k: 64,
                device: "p100".into(),
                json: true,
            }
        );
        let inv = Invocation::parse(&s(&["profile", "m.mtx"])).unwrap();
        assert_eq!(
            inv,
            Invocation::Profile {
                path: "m.mtx".into(),
                k: 256,
                device: "p100".into(),
                json: false,
            }
        );
    }

    #[test]
    fn unknown_flags_are_targeted_errors() {
        let err = Invocation::parse(&s(&["analyze", "m.mtx", "--jsno"])).unwrap_err();
        assert!(err.contains("--jsno"), "{err}");
        assert!(err.contains("analyze"), "{err}");
        assert!(err.contains("--device"), "should list valid flags: {err}");
        // --json is valid for profile but not bench
        let err = Invocation::parse(&s(&["bench", "m.mtx", "--json"])).unwrap_err();
        assert!(err.contains("--json") && err.contains("bench"), "{err}");
        assert!(Invocation::parse(&s(&["profile", "m.mtx", "--json"])).is_ok());
        let err = Invocation::parse(&s(&["generate", "cf", "--out", "x", "--k", "3"])).unwrap_err();
        assert!(err.contains("--k") && err.contains("generate"), "{err}");
    }

    #[test]
    fn profile_json_manifest_matches_preprocessing_time() {
        use spmm_core::telemetry::RunManifest;
        let dir = std::env::temp_dir().join("spmm_cli_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.mtx");
        run(&Invocation::Generate {
            class: "shuffled".into(),
            out: input.clone(),
            seed: 5,
            scale: 1,
        })
        .unwrap();

        let out = run(&Invocation::Profile {
            path: input.clone(),
            k: 32,
            device: "p100".into(),
            json: true,
        })
        .unwrap();
        let manifest = RunManifest::from_json(&out).unwrap();

        // The acceptance criterion: per-stage times are consistent with
        // Engine::preprocessing_time(), which is recorded in the meta.
        let prepare = manifest.find("prepare").expect("prepare stage");
        let recorded: u64 = manifest.meta["preprocessing_ns"].parse().unwrap();
        assert_eq!(prepare.duration_ns, recorded);
        let child_sum: u64 = prepare.children.iter().map(|c| c.duration_ns).sum();
        assert!(
            child_sum <= prepare.duration_ns,
            "children {child_sum} exceed prepare {}",
            prepare.duration_ns
        );
        assert!(manifest.find("prepare/plan").is_some());
        assert!(manifest.find("prepare/tile").is_some());
        // exec/sim stages from the two simulations
        assert!(manifest.find("sim.spmm").is_some());
        assert!(manifest.find("sim.sddmm").is_some());

        // The human-readable tree renders the same stages.
        let tree = run(&Invocation::Profile {
            path: input,
            k: 32,
            device: "p100".into(),
            json: false,
        })
        .unwrap();
        assert!(tree.contains("prepare"), "{tree}");
        assert!(tree.contains("plan"), "{tree}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_serve_bench() {
        let inv = Invocation::parse(&s(&[
            "serve-bench",
            "--requests",
            "8",
            "--cache",
            "4",
            "--zipf",
            "1.5",
            "--json",
        ]))
        .unwrap();
        match inv {
            Invocation::ServeBench { config, json } => {
                assert_eq!(config.requests, 8);
                assert_eq!(config.cache_capacity, 4);
                assert!((config.zipf_s - 1.5).abs() < 1e-12);
                assert!(json);
            }
            other => panic!("wrong invocation: {other:?}"),
        }
        assert!(Invocation::parse(&s(&["serve-bench", "--requests", "x"])).is_err());
        assert!(Invocation::parse(&s(&["serve-bench", "--out", "x.mtx"])).is_err());
    }

    #[test]
    fn parse_serve_bench_batching_flags() {
        // bare --batch enables the defaults
        match Invocation::parse(&s(&["serve-bench", "--batch"])).unwrap() {
            Invocation::ServeBench { config, .. } => {
                assert_eq!(config.batch, Some(BatchConfig::default()));
            }
            other => panic!("wrong invocation: {other:?}"),
        }
        // value flags imply batching and override the defaults
        match Invocation::parse(&s(&[
            "serve-bench",
            "--max-batch-k",
            "96",
            "--k-block",
            "24",
        ]))
        .unwrap()
        {
            Invocation::ServeBench { config, .. } => {
                let batch = config.batch.expect("value flags imply batching");
                assert_eq!(batch.max_batch_k, 96);
                assert_eq!(batch.k_block, 24);
            }
            other => panic!("wrong invocation: {other:?}"),
        }
        // without any batch flag, batching stays off
        match Invocation::parse(&s(&["serve-bench"])).unwrap() {
            Invocation::ServeBench { config, .. } => assert_eq!(config.batch, None),
            other => panic!("wrong invocation: {other:?}"),
        }
        assert!(Invocation::parse(&s(&["serve-bench", "--max-batch-k", "x"])).is_err());
        assert!(Invocation::parse(&s(&["serve-bench", "--k-block"])).is_err());
        // a zero-width block is a targeted parse error, not a panic or
        // a silent clamp to 1
        let err = Invocation::parse(&s(&["serve-bench", "--k-block", "0"])).unwrap_err();
        assert!(err.contains("--k-block"), "{err}");
        assert!(err.contains("at least one column"), "{err}");
        // chaos-bench takes the boolean flag only
        match Invocation::parse(&s(&["chaos-bench", "--batch"])).unwrap() {
            Invocation::ChaosBench { config, .. } => {
                assert_eq!(config.batch, Some(BatchConfig::default()));
            }
            other => panic!("wrong invocation: {other:?}"),
        }
        assert!(Invocation::parse(&s(&["chaos-bench", "--max-batch-k", "8"])).is_err());
    }

    #[test]
    fn parse_microbench() {
        let inv = Invocation::parse(&s(&[
            "microbench",
            "--k",
            "64",
            "--reps",
            "3",
            "--seed",
            "9",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            inv,
            Invocation::Microbench {
                k: 64,
                reps: 3,
                seed: 9,
                json: true,
            }
        );
        // defaults
        assert_eq!(
            Invocation::parse(&s(&["microbench"])).unwrap(),
            Invocation::Microbench {
                k: 96,
                reps: 5,
                seed: 42,
                json: false,
            }
        );
        let err = Invocation::parse(&s(&["microbench", "--k", "0"])).unwrap_err();
        assert!(err.contains("--k"), "{err}");
        assert!(Invocation::parse(&s(&["microbench", "--k", "x"])).is_err());
        assert!(Invocation::parse(&s(&["microbench", "--device", "p100"])).is_err());
    }

    #[test]
    fn microbench_runs_and_reports_every_width() {
        use spmm_core::telemetry::RunManifest;
        let out = run(&Invocation::Microbench {
            k: 32,
            reps: 1,
            seed: 11,
            json: false,
        })
        .unwrap();
        for w in MICRO_WIDTHS.iter().filter(|&&w| w <= 32) {
            assert!(
                out.lines()
                    .any(|l| l.trim_start().starts_with(&w.to_string())),
                "{out}"
            );
        }
        assert!(out.contains("overall:"), "{out}");

        let json = run(&Invocation::Microbench {
            k: 32,
            reps: 1,
            seed: 11,
            json: true,
        })
        .unwrap();
        let manifest = RunManifest::from_json(&json).unwrap();
        assert!(manifest.gauges.contains_key("micro.speedup"), "{json}");
        assert!(manifest.gauges.contains_key("micro.speedup.k8"), "{json}");
        assert!(manifest.gauges.contains_key("micro.speedup.k32"), "{json}");
        assert_eq!(manifest.meta.get("k").map(String::as_str), Some("32"));
    }

    #[test]
    fn parse_formatbench() {
        let inv = Invocation::parse(&s(&[
            "formatbench",
            "--k",
            "48",
            "--reps",
            "2",
            "--seed",
            "7",
            "--json",
        ]))
        .unwrap();
        assert_eq!(
            inv,
            Invocation::Formatbench {
                k: 48,
                reps: 2,
                seed: 7,
                json: true,
            }
        );
        // defaults
        assert_eq!(
            Invocation::parse(&s(&["formatbench"])).unwrap(),
            Invocation::Formatbench {
                k: 96,
                reps: 5,
                seed: 42,
                json: false,
            }
        );
        let err = Invocation::parse(&s(&["formatbench", "--k", "0"])).unwrap_err();
        assert!(err.contains("--k"), "{err}");
        assert!(Invocation::parse(&s(&["formatbench", "--shards", "2"])).is_err());
    }

    #[test]
    fn formatbench_runs_and_reports_every_class() {
        use spmm_core::telemetry::RunManifest;
        let json = run(&Invocation::Formatbench {
            k: 32,
            reps: 1,
            seed: 11,
            json: true,
        })
        .unwrap();
        let manifest = RunManifest::from_json(&json).unwrap();
        let overall = manifest.gauges["format.speedup"];
        assert!(
            overall >= 1.0,
            "strict-win adoption cannot regress: {overall}"
        );
        for class in MatrixClass::ALL {
            let gauge = format!("format.speedup.{}", class.label());
            assert!(
                manifest.gauges.get(&gauge).is_some_and(|&s| s >= 1.0),
                "{gauge} missing or < 1 in {json}"
            );
            assert!(
                manifest
                    .meta
                    .contains_key(&format!("format.chosen.{}", class.label())),
                "chosen label missing for {}",
                class.label()
            );
        }
        assert!(manifest.counters.contains_key("tune.format.skipped"));
    }

    #[test]
    fn parse_serve_bench_op_flag() {
        for (spelling, want) in [
            ("spmm", BenchOp::Spmm),
            ("spmv", BenchOp::Spmv),
            ("spgemm", BenchOp::Spgemm),
        ] {
            match Invocation::parse(&s(&["serve-bench", "--op", spelling])).unwrap() {
                Invocation::ServeBench { config, .. } => assert_eq!(config.op, want),
                other => panic!("wrong invocation: {other:?}"),
            }
        }
        // default stream is SpMM
        match Invocation::parse(&s(&["serve-bench"])).unwrap() {
            Invocation::ServeBench { config, .. } => assert_eq!(config.op, BenchOp::Spmm),
            other => panic!("wrong invocation: {other:?}"),
        }
        let err = Invocation::parse(&s(&["serve-bench", "--op", "sddmm"])).unwrap_err();
        assert!(err.contains("bad --op value"), "{err}");
        assert!(Invocation::parse(&s(&["serve-bench", "--op"])).is_err());
        // chaos-bench schedules its own mixed-op traffic; no --op there
        assert!(Invocation::parse(&s(&["chaos-bench", "--op", "spmv"])).is_err());
    }

    #[test]
    fn serve_bench_with_batching_reports_the_batch_probe() {
        let inv = Invocation::parse(&s(&[
            "serve-bench",
            "--requests",
            "12",
            "--concurrency",
            "2",
            "--workers",
            "2",
            "--cache",
            "4",
            "--k",
            "16",
            "--batch",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("batch probe"), "{out}");
        assert!(!out.contains("FAILED"), "{out}");
    }

    #[test]
    fn serve_bench_runs_and_reports() {
        let inv = Invocation::parse(&s(&[
            "serve-bench",
            "--requests",
            "12",
            "--concurrency",
            "2",
            "--workers",
            "2",
            "--cache",
            "4",
            "--k",
            "16",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("hit probe"), "{out}");
        assert!(out.contains("cold probe"), "{out}");
        assert!(!out.contains("FAILED"), "{out}");
    }

    #[test]
    fn parse_chaos_bench() {
        let inv = Invocation::parse(&s(&[
            "chaos-bench",
            "--requests",
            "24",
            "--seed",
            "7",
            "--faults",
            "serve.cache.prepare:error@every:3",
            "--json",
        ]))
        .unwrap();
        match inv {
            Invocation::ChaosBench { config, json } => {
                assert_eq!(config.requests, 24);
                assert_eq!(config.seed, 7);
                assert_eq!(
                    config.faults.as_deref(),
                    Some("serve.cache.prepare:error@every:3")
                );
                assert!(json);
            }
            other => panic!("wrong invocation: {other:?}"),
        }
        // --faults needs a value; --device is not a chaos-bench flag
        assert!(Invocation::parse(&s(&["chaos-bench", "--faults"])).is_err());
        assert!(Invocation::parse(&s(&["chaos-bench", "--device", "p100"])).is_err());
    }

    #[test]
    fn chaos_bench_clean_run_reports_exactness() {
        // no --faults: must not arm the global registry (other tests in
        // this binary run concurrently); faulted runs live in the
        // dedicated chaos suite
        let inv = Invocation::parse(&s(&[
            "chaos-bench",
            "--requests",
            "16",
            "--concurrency",
            "2",
            "--workers",
            "2",
            "--k",
            "8",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("ok 16  failed 0"), "{out}");
        assert!(!out.contains("FAILED"), "{out}");
        // a malformed fault spec is a targeted error, not a panic
        let mut bad_config = ChaosBenchConfig::default();
        bad_config.faults = Some("nope".into());
        let bad = Invocation::ChaosBench {
            config: bad_config,
            json: false,
        };
        assert!(run(&bad).is_err());
    }

    #[test]
    fn generate_all_classes() {
        for class in [
            "scattered",
            "powerlaw",
            "rmat",
            "banded",
            "stencil",
            "clustered",
            "shuffled",
            "noisy",
            "diagonal",
            "cf",
        ] {
            let m = generate_matrix(class, 1, 7).unwrap();
            assert!(m.nnz() > 0, "{class} empty");
        }
    }

    #[test]
    fn end_to_end_generate_reorder_analyze() {
        let dir = std::env::temp_dir().join("spmm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.mtx");
        let output = dir.join("out.mtx");
        let order = dir.join("order.txt");

        let r = run(&Invocation::Generate {
            class: "shuffled".into(),
            out: input.clone(),
            seed: 3,
            scale: 1,
        })
        .unwrap();
        assert!(r.contains("wrote shuffled"));

        let r = run(&Invocation::Reorder {
            input: input.clone(),
            out: output.clone(),
            order: Some(order.clone()),
        })
        .unwrap();
        assert!(r.contains("reordered"), "{r}");
        // order file has one index per row
        let lines = std::fs::read_to_string(&order).unwrap();
        let m: CsrMatrix<f32> = mm_io::read_matrix_market_file(&input).unwrap();
        assert_eq!(lines.lines().count(), m.nrows());

        let r = run(&Invocation::Analyze {
            path: input,
            k: 64,
            device: "p100".into(),
        })
        .unwrap();
        assert!(r.contains("recommendation"), "{r}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_plan() {
        let inv = Invocation::parse(&s(&["plan", "save", "m.mtx", "--store", "plans"])).unwrap();
        assert_eq!(
            inv,
            Invocation::Plan {
                action: "save".into(),
                path: "m.mtx".into(),
                store: "plans".into(),
            }
        );
        for action in ["load", "verify"] {
            assert!(Invocation::parse(&s(&["plan", action, "m.mtx", "--store", "d"])).is_ok());
        }
        // bad action, missing matrix, missing --store, unknown flag
        assert!(Invocation::parse(&s(&["plan", "frobnicate", "m.mtx", "--store", "d"])).is_err());
        assert!(Invocation::parse(&s(&["plan", "save", "--store", "d"])).is_err());
        assert!(Invocation::parse(&s(&["plan", "save", "m.mtx"])).is_err());
        assert!(
            Invocation::parse(&s(&["plan", "save", "m.mtx", "--store", "d", "--k", "8"])).is_err()
        );
    }

    #[test]
    fn parse_plan_gc() {
        let inv =
            Invocation::parse(&s(&["plan", "gc", "--store", "plans", "--keep", "3"])).unwrap();
        assert_eq!(
            inv,
            Invocation::PlanGc {
                store: "plans".into(),
                keep: 3,
            }
        );
        // --keep defaults to 8 and gc needs no matrix positional
        match Invocation::parse(&s(&["plan", "gc", "--store", "plans"])).unwrap() {
            Invocation::PlanGc { keep, .. } => assert_eq!(keep, 8),
            other => panic!("wrong invocation: {other:?}"),
        }
        assert!(Invocation::parse(&s(&["plan", "gc"])).is_err()); // no --store
        assert!(Invocation::parse(&s(&["plan", "gc", "--store", "d", "--keep", "x"])).is_err());
        // --keep is a gc-only flag
        let err = Invocation::parse(&s(&[
            "plan", "save", "m.mtx", "--store", "d", "--keep", "2",
        ]))
        .unwrap_err();
        assert!(err.contains("--keep"), "{err}");
    }

    #[test]
    fn parse_deltas_flag() {
        for cmd in ["serve-bench", "chaos-bench"] {
            match Invocation::parse(&s(&[cmd, "--deltas"])).unwrap() {
                Invocation::ServeBench { config, .. } => assert!(config.deltas),
                Invocation::ChaosBench { config, .. } => assert!(config.deltas),
                other => panic!("wrong invocation: {other:?}"),
            }
            match Invocation::parse(&s(&[cmd])).unwrap() {
                Invocation::ServeBench { config, .. } => assert!(!config.deltas),
                Invocation::ChaosBench { config, .. } => assert!(!config.deltas),
                other => panic!("wrong invocation: {other:?}"),
            }
        }
        assert!(Invocation::parse(&s(&["analyze", "m.mtx", "--deltas"])).is_err());
    }

    #[test]
    fn end_to_end_plan_gc_keeps_newest_plans() {
        let dir = std::env::temp_dir().join(format!("spmm_cli_gc_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store_dir = dir.join("plans");
        for (i, class) in ["shuffled", "banded", "clustered"].iter().enumerate() {
            let input = dir.join(format!("m{i}.mtx"));
            run(&Invocation::Generate {
                class: (*class).into(),
                out: input.clone(),
                seed: 5 + i as u64,
                scale: 1,
            })
            .unwrap();
            run(&Invocation::Plan {
                action: "save".into(),
                path: input,
                store: store_dir.clone(),
            })
            .unwrap();
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let out = run(&Invocation::PlanGc {
            store: store_dir.clone(),
            keep: 1,
        })
        .unwrap();
        assert!(out.contains("deleted 2 plan file(s)"), "{out}");
        assert!(out.contains("kept the 1 newest (1 on disk)"), "{out}");
        assert_eq!(
            PlanStore::open(&store_dir).unwrap().list().unwrap().len(),
            1
        );
        // idempotent: nothing left to collect
        let again = run(&Invocation::PlanGc {
            store: store_dir,
            keep: 1,
        })
        .unwrap();
        assert!(again.contains("deleted 0 plan file(s)"), "{again}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_bench_with_deltas_reports_the_epoch_chain() {
        let inv = Invocation::parse(&s(&[
            "chaos-bench",
            "--requests",
            "24",
            "--concurrency",
            "2",
            "--workers",
            "2",
            "--k",
            "8",
            "--deltas",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("deltas: committed"), "{out}");
        assert!(out.contains("final epoch exact"), "{out}");
        assert!(!out.contains("FAILED"), "{out}");
    }

    #[test]
    fn parse_serve_bench_plan_store_flag() {
        match Invocation::parse(&s(&["serve-bench", "--plan-store", "plans"])).unwrap() {
            Invocation::ServeBench { config, .. } => {
                assert_eq!(config.plan_store, Some(PathBuf::from("plans")));
            }
            other => panic!("wrong invocation: {other:?}"),
        }
        match Invocation::parse(&s(&["serve-bench"])).unwrap() {
            Invocation::ServeBench { config, .. } => assert_eq!(config.plan_store, None),
            other => panic!("wrong invocation: {other:?}"),
        }
        assert!(Invocation::parse(&s(&["serve-bench", "--plan-store"])).is_err());
    }

    #[test]
    fn parse_shards_flag() {
        for cmd in ["serve-bench", "chaos-bench"] {
            match Invocation::parse(&s(&[cmd, "--shards", "4"])).unwrap() {
                Invocation::ServeBench { config, .. } => assert_eq!(config.shards, 4),
                Invocation::ChaosBench { config, .. } => assert_eq!(config.shards, 4),
                other => panic!("wrong invocation: {other:?}"),
            }
            // default stays single-engine; zero is a targeted error
            match Invocation::parse(&s(&[cmd])).unwrap() {
                Invocation::ServeBench { config, .. } => assert_eq!(config.shards, 1),
                Invocation::ChaosBench { config, .. } => assert_eq!(config.shards, 1),
                other => panic!("wrong invocation: {other:?}"),
            }
            let err = Invocation::parse(&s(&[cmd, "--shards", "0"])).unwrap_err();
            assert!(err.contains("--shards"), "{err}");
            assert!(Invocation::parse(&s(&[cmd, "--shards", "x"])).is_err());
            assert!(Invocation::parse(&s(&[cmd, "--shards"])).is_err());
        }
        // --shards is not a flag of the one-shot commands
        assert!(Invocation::parse(&s(&["analyze", "m.mtx", "--shards", "2"])).is_err());
    }

    #[test]
    fn sharded_serve_bench_runs_and_reports_the_shard_probe() {
        let inv = Invocation::parse(&s(&[
            "serve-bench",
            "--requests",
            "12",
            "--concurrency",
            "2",
            "--workers",
            "1",
            "--cache",
            "4",
            "--k",
            "16",
            "--shards",
            "2",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("sharded: 2 engines"), "{out}");
        assert!(out.contains("shard probe"), "{out}");
        assert!(!out.contains("FAILED"), "{out}");
    }

    #[test]
    fn end_to_end_plan_save_load_verify() {
        let dir = std::env::temp_dir().join(format!("spmm_cli_plan_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.mtx");
        let store = dir.join("plans");

        run(&Invocation::Generate {
            class: "shuffled".into(),
            out: input.clone(),
            seed: 5,
            scale: 1,
        })
        .unwrap();

        let plan = |action: &str| {
            run(&Invocation::Plan {
                action: action.into(),
                path: input.clone(),
                store: store.clone(),
            })
        };

        // load before save is a targeted miss, not a panic
        let r = plan("load");
        assert!(r.is_err());
        assert!(r.unwrap_err().contains("no stored plan"));

        let r = plan("save").unwrap();
        assert!(r.contains("saved plan"), "{r}");

        let r = plan("load").unwrap();
        assert!(r.contains("loaded plan"), "{r}");
        assert!(r.contains("zero preprocessing"), "{r}");

        let r = plan("verify").unwrap();
        assert!(r.contains("verifies"), "{r}");

        // corrupt the stored file: verify must report invalid, not panic
        let m: CsrMatrix<f32> = mm_io::read_matrix_market_file(&input).unwrap();
        let fp = MatrixFingerprint::of(&m);
        let file = PlanStore::open(&store).unwrap().path_for::<f32>(&fp);
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&file, bytes).unwrap();
        let r = plan("verify");
        assert!(r.is_err());
        assert!(r.unwrap_err().contains("invalid"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_error_not_a_panic() {
        let r = run(&Invocation::Analyze {
            path: "/nonexistent/m.mtx".into(),
            k: 64,
            device: "p100".into(),
        });
        assert!(r.is_err());
    }
}
