//! The format zoo: alternative physical layouts as first-class
//! execution variants.
//!
//! The paper's §4 strategy is trial-and-error; this module widens the
//! trial beyond CSR-flavored variants. After reordering, the engine can
//! rebuild the whole reordered matrix in SELL-C-σ (row-regularized
//! sliced ELLPACK — the format family Yang/Buluç/Owens show winning on
//! exactly the clustered structures round-2 reordering manufactures) or
//! CSB (β×β register blocks — strong when nonzeros are clustered), race
//! the candidates against the incumbent ASpT layout on the gpu-sim
//! transaction model, and execute the SpMM family against the winner.
//!
//! Two invariants make this safe:
//!
//! * **Bit-exactness.** Both format kernels fold each output row in
//!   ascending-column order with `mul_add`, exactly like the sequential
//!   row-wise reference — and row reordering never changes the
//!   within-row order. Outputs are bit-identical to that reference no
//!   matter which format wins; on the exactly-representable operands
//!   the serving layer's exactness bars use, every execution path
//!   (ASpT included) agrees bit for bit, so those bars hold unchanged.
//! * **Never-regress.** [`crate::autotune::choose_format`] only adopts
//!   a challenger on a strictly smaller simulated time; ties and losses
//!   keep the incumbent CSR/ASpT path.

use serde::{Deserialize, Serialize};
use spmm_formats::{CsbMatrix, SellPMatrix};
use spmm_gpu_sim::{DeviceConfig, SimReport};
use spmm_sparse::{CsrMatrix, DenseMatrix, Scalar, SparseError};

/// Slice height (the `C` of SELL-C-σ) used for candidate layouts: one
/// warp of rows per slice, the height MAGMA's SpMM kernels use.
pub const SELL_SLICE_HEIGHT: usize = 32;

/// σ-window candidates for the SELL row sort. `0` disables sorting
/// (pure SELL-P); the larger windows trade sort scope for padding.
pub const SELL_SIGMA_CANDIDATES: [usize; 2] = [0, 256];

/// Block-size candidates for CSB layouts.
pub const CSB_BETA_CANDIDATES: [usize; 2] = [64, 128];

/// Padding-blowup cap for candidate SELL layouts: a candidate whose
/// padded slots would exceed this multiple of `nnz` is "format not
/// applicable" and skipped (counted as `tune.format.skipped`).
pub const MAX_FORMAT_PADDING: f64 = 2.0;

/// Minimum expected entries per non-empty β×β block for a CSB candidate
/// to be worth building — below this the block headers outweigh any
/// register-blocking reuse and the candidate is skipped.
pub const MIN_CSB_OCCUPANCY: f64 = 2.0;

/// The physical layout the engine's SpMM-family ops execute against —
/// the *choice* half of a format selection, cheap to copy and persist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FormatChoice {
    /// The incumbent: reordered CSR through the ASpT decomposition.
    Csr,
    /// SELL-C-σ over the whole reordered matrix.
    SellCSigma {
        /// Slice height (`C`).
        slice_height: usize,
        /// Row-sort window (`σ`); `0` disables sorting.
        sigma: usize,
    },
    /// Compressed Sparse Blocks over the whole reordered matrix.
    Csb {
        /// Block size (`β`).
        beta: usize,
    },
}

impl FormatChoice {
    /// Short human-readable label (`csr`, `sell-32-256`, `csb-64`) for
    /// telemetry and the `plan verify` / `plan load` CLI output.
    pub fn label(&self) -> String {
        match self {
            FormatChoice::Csr => "csr".to_string(),
            FormatChoice::SellCSigma {
                slice_height,
                sigma,
            } => format!("sell-{slice_height}-{sigma}"),
            FormatChoice::Csb { beta } => format!("csb-{beta}"),
        }
    }
}

impl std::fmt::Display for FormatChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A built format payload: the physical layout the engine executes
/// against when a non-CSR format won the trial. Always laid out over
/// the *reordered* matrix, so the engine's output unpermutation is
/// unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatPayload<T> {
    /// SELL-C-σ layout.
    Sell {
        /// The layout.
        matrix: SellPMatrix<T>,
        /// The σ window it was built with (not recoverable from the
        /// layout itself once sorting is a no-op).
        sigma: usize,
    },
    /// CSB layout.
    Csb(CsbMatrix<T>),
}

impl<T: Scalar> FormatPayload<T> {
    /// Builds the payload for a choice over the reordered matrix.
    /// `Csr` needs no payload (`Ok(None)`). Fails with the layouts'
    /// "format not applicable" / validation errors — the delta path
    /// treats that as revert-to-CSR, the autotuner as a skip.
    pub fn build(
        choice: FormatChoice,
        reordered: &CsrMatrix<T>,
    ) -> Result<Option<Self>, SparseError> {
        match choice {
            FormatChoice::Csr => Ok(None),
            FormatChoice::SellCSigma {
                slice_height,
                sigma,
            } => {
                let matrix =
                    SellPMatrix::try_from_csr(reordered, slice_height, sigma, MAX_FORMAT_PADDING)?;
                Ok(Some(FormatPayload::Sell { matrix, sigma }))
            }
            FormatChoice::Csb { beta } => {
                let csb = CsbMatrix::try_from_csr(reordered, beta)?;
                Ok(Some(FormatPayload::Csb(csb)))
            }
        }
    }

    /// The choice this payload realizes.
    pub fn choice(&self) -> FormatChoice {
        match self {
            FormatPayload::Sell { matrix, sigma } => FormatChoice::SellCSigma {
                slice_height: matrix.slice_height(),
                sigma: *sigma,
            },
            FormatPayload::Csb(csb) => FormatChoice::Csb { beta: csb.beta() },
        }
    }

    /// Reconstructs the CSR matrix this payload lays out — the codec's
    /// cross-check that a decoded payload agrees with the plan's
    /// reordered matrix.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        match self {
            FormatPayload::Sell { matrix, .. } => matrix.to_csr(),
            FormatPayload::Csb(csb) => csb.to_csr(),
        }
    }

    /// Parallel SpMM through the format's kernel; rows come back in the
    /// layout's input order (the engine's reordered row space).
    pub fn spmm(&self, x: &DenseMatrix<T>) -> Result<DenseMatrix<T>, SparseError> {
        match self {
            FormatPayload::Sell { matrix, .. } => matrix.spmm_par(x),
            FormatPayload::Csb(csb) => csb.spmm_par(x),
        }
    }

    /// Column-blocked parallel SpMM (the batched serve path),
    /// bit-identical to [`FormatPayload::spmm`].
    pub fn spmm_kblocked(
        &self,
        x: &DenseMatrix<T>,
        k_block: usize,
    ) -> Result<DenseMatrix<T>, SparseError> {
        match self {
            FormatPayload::Sell { matrix, .. } => matrix.spmm_kblocked(x, k_block),
            FormatPayload::Csb(csb) => csb.spmm_kblocked(x, k_block),
        }
    }

    /// Simulated SpMM performance of the format kernel on the gpu-sim
    /// transaction model — what the trial ranks.
    pub fn simulate_spmm(&self, k: usize, device: &DeviceConfig) -> SimReport {
        match self {
            FormatPayload::Sell { matrix, .. } => matrix.simulate_spmm(k, device),
            FormatPayload::Csb(csb) => csb.simulate_spmm(k, device),
        }
    }

    /// Number of nonzeros stored (padding excluded).
    pub fn nnz(&self) -> usize {
        match self {
            FormatPayload::Sell { matrix, .. } => matrix.nnz(),
            FormatPayload::Csb(csb) => csb.nnz(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_data::generators;

    #[test]
    fn choice_labels_roundtrip_the_parameters() {
        assert_eq!(FormatChoice::Csr.label(), "csr");
        assert_eq!(
            FormatChoice::SellCSigma {
                slice_height: 32,
                sigma: 256
            }
            .label(),
            "sell-32-256"
        );
        assert_eq!(FormatChoice::Csb { beta: 64 }.label(), "csb-64");
        assert_eq!(format!("{}", FormatChoice::Csb { beta: 64 }), "csb-64");
    }

    #[test]
    fn build_realizes_the_choice_and_roundtrips() {
        let m = generators::power_law::<f64>(300, 280, 2400, 0.85, 5);
        for choice in [
            FormatChoice::SellCSigma {
                slice_height: 16,
                sigma: 64,
            },
            FormatChoice::Csb { beta: 32 },
        ] {
            let payload = FormatPayload::build(choice, &m).unwrap().unwrap();
            assert_eq!(payload.choice(), choice);
            assert_eq!(payload.to_csr(), m);
            assert_eq!(payload.nnz(), m.nnz());
        }
        assert!(FormatPayload::build(FormatChoice::Csr, &m)
            .unwrap()
            .is_none());
    }

    #[test]
    fn build_propagates_not_applicable() {
        // one long row among empties: SELL at slice_height = nrows pads
        // everything to the long row and blows the cap
        let mut rowptr = vec![0usize; 65];
        for p in rowptr.iter_mut().skip(1) {
            *p = 64;
        }
        let m = CsrMatrix::<f64>::from_parts(64, 64, rowptr, (0..64u32).collect(), vec![1.0; 64])
            .unwrap();
        let choice = FormatChoice::SellCSigma {
            slice_height: 64,
            sigma: 0,
        };
        assert!(FormatPayload::build(choice, &m).is_err());
        // oversized beta is a validation error, not a truncation
        assert!(FormatPayload::build(
            FormatChoice::Csb {
                beta: (u16::MAX as usize) + 2
            },
            &m
        )
        .is_err());
    }

    #[test]
    fn format_kernels_are_bit_exact_vs_rowwise_reference() {
        let m = generators::noisy_shuffled_clusters::<f64>(8, 16, 32, 12, 4, 7);
        let x = generators::random_dense::<f64>(m.ncols(), 11, 3);
        let reference = crate::spmm::spmm_rowwise_seq(&m, &x).unwrap();
        for choice in [
            FormatChoice::SellCSigma {
                slice_height: 8,
                sigma: 32,
            },
            FormatChoice::Csb { beta: 16 },
        ] {
            let payload = FormatPayload::build(choice, &m).unwrap().unwrap();
            let y = payload.spmm(&x).unwrap();
            assert_eq!(
                y.data(),
                reference.data(),
                "{choice} must be bit-exact vs the row-wise reference"
            );
            // k-blocked sweeps, including k % k_block != 0
            for kb in [1usize, 4, 11, 16] {
                let yb = payload.spmm_kblocked(&x, kb).unwrap();
                assert_eq!(yb.data(), reference.data(), "{choice} k_block {kb}");
            }
        }
    }
}
