//! Monomorphized SpMM/SDDMM microkernels (ROADMAP item 2, kease-style).
//!
//! The generic kernels in [`crate::spmm`] run every column block through
//! [`axpy`](crate::spmm) over a *runtime-length* slice: the
//! autovectorizer must keep a length check in the loop and cannot keep
//! the output block in registers across nonzeros. This module
//! monomorphizes the inner loops over the k-block width `KB ∈ {8, 16,
//! 32}` ([`MICRO_WIDTHS`]) and the scalar type, using `[T; KB]`
//! register accumulators: the output block is loaded once per
//! (row, block) pair, accumulated in registers across *all* nonzeros of
//! the row (dense-tile runs and sparse-remainder rows alike), and
//! stored once — a fixed trip count the compiler fully unrolls.
//!
//! **Bit-exactness.** Per output element the accumulation is the same
//! sequential `mul_add` chain in the same nonzero order as the generic
//! kernels — columns never mix, blocking only partitions columns — so
//! every specialized kernel is bit-identical to its generic
//! counterpart (and the rowwise ones to
//! [`spmm_rowwise_seq`](crate::spmm::spmm_rowwise_seq)). The
//! SDDMM dot product keeps a *single* accumulator chain with a fixed
//! `KB`-element trip count per chunk ([`dot` in
//! `crate::sddmm`](crate::sddmm) order preserved); a lane-parallel
//! multi-accumulator dot would reassociate the reduction and is
//! deliberately not used.
//!
//! Widths are selected at plan time ([`crate::autotune::choose_micro_width`])
//! and recorded in the `.spmmplan` codec; execution goes through the
//! [`spmm_aspt_kblocked_auto`]/[`spmm_rowwise_kblocked_auto`]
//! dispatchers, which fall back to the generic slice path for any other
//! width. The trailing `k % KB` columns always take the generic path.

use rayon::prelude::*;
use spmm_aspt::AsptMatrix;
use spmm_sparse::{CsrMatrix, DenseMatrix, Scalar, SparseError};

use crate::spmm::{axpy, check_dims, panel_chunks, spmm_aspt_kblocked, spmm_rowwise_kblocked};

/// K-block widths with monomorphized kernel bodies, in ascending order.
pub const MICRO_WIDTHS: [usize; 3] = [8, 16, 32];

/// Maps a k-block width to its specialized microkernel width:
/// `Some(width)` when a monomorphized body exists for exactly that
/// width, `None` when the generic slice kernel will run.
pub fn micro_width_for(k_block: usize) -> Option<usize> {
    MICRO_WIDTHS.contains(&k_block).then_some(k_block)
}

/// The register-accumulator body: `y_block += Σ vals[e] * x[cols[e]]`
/// over one `KB`-wide column block starting at `c0`, with the block
/// held in a `[T; KB]` across all nonzeros of the run. Accumulation
/// order per element is identical to chaining [`axpy`] per nonzero.
#[inline]
fn axpy_run_micro<T: Scalar, const KB: usize>(
    y_block: &mut [T],
    cols: &[u32],
    vals: &[T],
    x: &DenseMatrix<T>,
    c0: usize,
) {
    let y_arr: &mut [T; KB] = y_block.try_into().expect("y block width must equal KB");
    let mut acc = *y_arr;
    for (&c, &v) in cols.iter().zip(vals) {
        let x_arr: &[T; KB] = x.row(c as usize)[c0..c0 + KB]
            .try_into()
            .expect("x block width must equal KB");
        for j in 0..KB {
            acc[j] = v.mul_add(x_arr[j], acc[j]);
        }
    }
    *y_arr = acc;
}

/// Monomorphized column-blocked row-parallel SpMM at width `KB`.
/// Bit-identical to [`spmm_rowwise_kblocked`] at the same width.
fn spmm_rowwise_kblocked_micro<T: Scalar, const KB: usize>(
    s: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
) -> Result<DenseMatrix<T>, SparseError> {
    let (m, k) = check_dims(s, x)?;
    let mut y = DenseMatrix::zeros(m, k);
    if k == 0 {
        return Ok(y);
    }
    let full_end = k - k % KB;
    y.data_mut()
        .par_chunks_mut(k)
        .enumerate()
        .for_each(|(i, y_row)| {
            let (cols, vals) = s.row(i);
            if cols.is_empty() {
                return;
            }
            let mut c0 = 0;
            while c0 < full_end {
                axpy_run_micro::<T, KB>(&mut y_row[c0..c0 + KB], cols, vals, x, c0);
                c0 += KB;
            }
            if c0 < k {
                for (&c, &v) in cols.iter().zip(vals) {
                    axpy(&mut y_row[c0..k], v, &x.row(c as usize)[c0..k]);
                }
            }
        });
    Ok(y)
}

/// Monomorphized column-blocked ASpT SpMM at width `KB`: the same
/// single-fork panel traversal as [`spmm_aspt_kblocked`] with the
/// dense-tile and remainder inner loops running through the `[T; KB]`
/// register body. Bit-identical to the generic kernel at the same
/// width.
fn spmm_aspt_kblocked_micro<T: Scalar, const KB: usize>(
    aspt: &AsptMatrix<T>,
    x: &DenseMatrix<T>,
) -> Result<DenseMatrix<T>, SparseError> {
    if aspt.ncols() != x.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("S.ncols ({}) == X.nrows", aspt.ncols()),
            got: format!("{}", x.nrows()),
        });
    }
    let k = x.ncols();
    let mut y = DenseMatrix::zeros(aspt.nrows(), k);
    let chunks = panel_chunks(aspt, y.data_mut(), k);
    let remainder = aspt.remainder();
    let full_end = k - k % KB;

    aspt.panels()
        .par_iter()
        .zip(chunks)
        .for_each(|(panel, y_chunk)| {
            let panel_rows = panel.row_end - panel.row_start;
            let mut c0 = 0;
            while c0 < full_end {
                for tile in &panel.tiles {
                    for rel in 0..panel_rows {
                        let (lo, hi) = (tile.rowptr[rel], tile.rowptr[rel + 1]);
                        if lo == hi {
                            continue;
                        }
                        axpy_run_micro::<T, KB>(
                            &mut y_chunk[rel * k + c0..rel * k + c0 + KB],
                            &tile.colidx[lo..hi],
                            &tile.values[lo..hi],
                            x,
                            c0,
                        );
                    }
                }
                for r in panel.rows() {
                    let rel = r - panel.row_start;
                    let (cols, vals) = remainder.row(r);
                    if cols.is_empty() {
                        continue;
                    }
                    axpy_run_micro::<T, KB>(
                        &mut y_chunk[rel * k + c0..rel * k + c0 + KB],
                        cols,
                        vals,
                        x,
                        c0,
                    );
                }
                c0 += KB;
            }
            // trailing partial block (k % KB columns): generic slice path
            if c0 < k {
                for tile in &panel.tiles {
                    for rel in 0..panel_rows {
                        let y_row = &mut y_chunk[rel * k + c0..rel * k + k];
                        for e in tile.rowptr[rel]..tile.rowptr[rel + 1] {
                            axpy(
                                y_row,
                                tile.values[e],
                                &x.row(tile.colidx[e] as usize)[c0..k],
                            );
                        }
                    }
                }
                for r in panel.rows() {
                    let rel = r - panel.row_start;
                    let y_row = &mut y_chunk[rel * k + c0..rel * k + k];
                    let (cols, vals) = remainder.row(r);
                    for (&c, &v) in cols.iter().zip(vals) {
                        axpy(y_row, v, &x.row(c as usize)[c0..k]);
                    }
                }
            }
        });
    Ok(y)
}

/// Width-dispatching row-parallel k-blocked SpMM: routes the widths in
/// [`MICRO_WIDTHS`] to their monomorphized bodies and everything else
/// to the generic [`spmm_rowwise_kblocked`]. Bit-identical to the
/// generic kernel (and to `spmm_rowwise_seq`) for every width.
pub fn spmm_rowwise_kblocked_auto<T: Scalar>(
    s: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    k_block: usize,
) -> Result<DenseMatrix<T>, SparseError> {
    match k_block {
        8 => spmm_rowwise_kblocked_micro::<T, 8>(s, x),
        16 => spmm_rowwise_kblocked_micro::<T, 16>(s, x),
        32 => spmm_rowwise_kblocked_micro::<T, 32>(s, x),
        _ => spmm_rowwise_kblocked(s, x, k_block),
    }
}

/// Width-dispatching ASpT k-blocked SpMM: routes the widths in
/// [`MICRO_WIDTHS`] to their monomorphized bodies and everything else
/// to the generic [`spmm_aspt_kblocked`]. Bit-identical to the generic
/// kernel (and to `spmm_aspt`) for every width.
pub fn spmm_aspt_kblocked_auto<T: Scalar>(
    aspt: &AsptMatrix<T>,
    x: &DenseMatrix<T>,
    k_block: usize,
) -> Result<DenseMatrix<T>, SparseError> {
    match k_block {
        8 => spmm_aspt_kblocked_micro::<T, 8>(aspt, x),
        16 => spmm_aspt_kblocked_micro::<T, 16>(aspt, x),
        32 => spmm_aspt_kblocked_micro::<T, 32>(aspt, x),
        _ => spmm_aspt_kblocked(aspt, x, k_block),
    }
}

/// Fixed-trip-count dot product: identical accumulation chain to the
/// scalar `dot` (one accumulator, element order preserved — bit-exact),
/// but chunked so the `KB`-element inner loop has a compile-time trip
/// count the autovectorizer unrolls without length checks.
#[inline]
pub(crate) fn dot_chunked<T: Scalar, const KB: usize>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = T::ZERO;
    let mut ac = a.chunks_exact(KB);
    let mut bc = b.chunks_exact(KB);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        let ca: &[T; KB] = ca.try_into().expect("chunks_exact yields KB elements");
        let cb: &[T; KB] = cb.try_into().expect("chunks_exact yields KB elements");
        for j in 0..KB {
            acc = ca[j].mul_add(cb[j], acc);
        }
    }
    for (&av, &bv) in ac.remainder().iter().zip(bc.remainder()) {
        acc = av.mul_add(bv, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_aspt::AsptConfig;
    use spmm_data::generators;

    use crate::spmm::{spmm_aspt, spmm_rowwise_seq};

    #[test]
    fn micro_width_for_matches_the_specialized_set() {
        assert_eq!(micro_width_for(8), Some(8));
        assert_eq!(micro_width_for(16), Some(16));
        assert_eq!(micro_width_for(32), Some(32));
        for other in [0, 1, 7, 9, 24, 64, 128] {
            assert_eq!(micro_width_for(other), None, "width {other}");
        }
    }

    #[test]
    fn rowwise_micro_is_bit_identical_to_seq() {
        let s = generators::power_law::<f64>(80, 64, 600, 0.85, 7);
        // 37 exercises partial trailing blocks at every width; 32 an
        // exact multiple for KB=8/16/32
        for k in [5, 32, 37] {
            let x = generators::random_dense::<f64>(64, k, 11);
            let reference = spmm_rowwise_seq(&s, &x).unwrap();
            for kb in MICRO_WIDTHS {
                let micro = spmm_rowwise_kblocked_auto(&s, &x, kb).unwrap();
                assert_eq!(reference.data(), micro.data(), "k={k} kb={kb}");
            }
        }
    }

    #[test]
    fn aspt_micro_is_bit_identical_to_generic() {
        let s = generators::block_diagonal::<f32>(5, 12, 20, 8, 17);
        for cfg in [AsptConfig::paper_figure(), AsptConfig::default()] {
            let aspt = AsptMatrix::build(&s, &cfg);
            for k in [7, 16, 33, 64] {
                let x = generators::random_dense::<f32>(s.ncols(), k, 19);
                let reference = spmm_aspt(&aspt, &x).unwrap();
                for kb in MICRO_WIDTHS {
                    let generic = spmm_aspt_kblocked(&aspt, &x, kb).unwrap();
                    let micro = spmm_aspt_kblocked_auto(&aspt, &x, kb).unwrap();
                    assert_eq!(reference.data(), generic.data(), "generic k={k} kb={kb}");
                    assert_eq!(reference.data(), micro.data(), "micro k={k} kb={kb}");
                }
            }
        }
    }

    #[test]
    fn auto_dispatch_falls_back_to_generic_for_other_widths() {
        let s = generators::uniform_random::<f64>(40, 32, 5, 3);
        let x = generators::random_dense::<f64>(32, 20, 9);
        let reference = spmm_rowwise_seq(&s, &x).unwrap();
        for kb in [1, 7, 64] {
            let y = spmm_rowwise_kblocked_auto(&s, &x, kb).unwrap();
            assert_eq!(reference.data(), y.data(), "fallback kb={kb}");
        }
    }

    #[test]
    fn micro_handles_degenerate_shapes() {
        let s = generators::banded::<f64>(10, 2, 3, 1);
        let empty_x = DenseMatrix::<f64>::zeros(10, 0);
        for kb in MICRO_WIDTHS {
            let y = spmm_rowwise_kblocked_auto(&s, &empty_x, kb).unwrap();
            assert_eq!((y.nrows(), y.ncols()), (10, 0));
        }
        let aspt = AsptMatrix::build(&s, &AsptConfig::default());
        for kb in MICRO_WIDTHS {
            let y = spmm_aspt_kblocked_auto(&aspt, &empty_x, kb).unwrap();
            assert_eq!((y.nrows(), y.ncols()), (10, 0));
        }
        let bad_x = generators::random_dense::<f64>(4, 3, 1);
        assert!(spmm_rowwise_kblocked_auto(&s, &bad_x, 8).is_err());
        assert!(spmm_aspt_kblocked_auto(&aspt, &bad_x, 8).is_err());
    }

    #[test]
    fn dot_chunked_is_bit_identical_to_plain_chain() {
        for n in [0usize, 1, 7, 8, 9, 31, 32, 33, 100] {
            let a: Vec<f32> = (0..n).map(|i| (i as f32).sin() * 3.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i as f32).cos() * 0.5).collect();
            let mut plain = 0.0f32;
            for (&x, &y) in a.iter().zip(&b) {
                plain = x.mul_add(y, plain);
            }
            for_widths(&a, &b, plain);
        }
    }

    fn for_widths(a: &[f32], b: &[f32], plain: f32) {
        assert_eq!(dot_chunked::<f32, 8>(a, b).to_bits(), plain.to_bits());
        assert_eq!(dot_chunked::<f32, 16>(a, b).to_bits(), plain.to_bits());
        assert_eq!(dot_chunked::<f32, 32>(a, b).to_bits(), plain.to_bits());
    }
}
