//! The end-to-end execution engine: Fig 5 as an object.
//!
//! [`Engine::prepare`] plans the reordering (with the §4 skip
//! heuristics), materialises the reordered matrix, builds the ASpT
//! decomposition and records the preprocessing wall-clock time (the
//! quantity of Fig 12 / Tables 3–4). The `spmm`/`sddmm` methods then
//! execute against the decomposition and return outputs **in the
//! caller's original row / nonzero order**, so reordering is invisible
//! to users of the results.

use spmm_aspt::AsptMatrix;
use spmm_gpu_sim::kernels::{simulate_sddmm_aspt, simulate_spmm_aspt};
use spmm_gpu_sim::{DeviceConfig, SimReport};
use spmm_reorder::{plan_reordering, ReorderConfig, ReorderPlan};
use spmm_sparse::{CsrMatrix, DenseMatrix, Permutation, Scalar, SparseError};
use std::time::{Duration, Instant};

use crate::sddmm::sddmm_aspt;
use crate::spmm::spmm_aspt;

/// Engine construction options.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Reordering pipeline configuration (LSH, clustering, ASpT, skip
    /// policy).
    pub reorder: ReorderConfig,
}

/// A prepared SpMM/SDDMM executor for one sparse matrix.
///
/// ```
/// use spmm_data::generators;
/// use spmm_kernels::{Engine, EngineConfig};
/// use spmm_kernels::spmm::spmm_rowwise_seq;
///
/// // cluster structure hidden by a row shuffle — the engine's
/// // reordering recovers it, and the results come back in the
/// // caller's original row order
/// let s = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 7);
/// let x = generators::random_dense::<f64>(s.ncols(), 8, 1);
///
/// let engine = Engine::prepare(&s, &EngineConfig::default());
/// assert!(engine.plan().needs_reordering());
///
/// let y = engine.spmm(&x)?;
/// let reference = spmm_rowwise_seq(&s, &x)?;
/// assert!(reference.max_abs_diff(&y) < 1e-10);
/// # Ok::<(), spmm_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine<T> {
    plan: ReorderPlan,
    aspt: AsptMatrix<T>,
    /// The reordered matrix (identity reorder when round 1 skipped).
    reordered: CsrMatrix<T>,
    /// `nnz_map[reordered_nnz] = original_nnz`.
    nnz_map: Vec<usize>,
    preprocessing: Duration,
    original_ncols: usize,
}

impl<T: Scalar> Engine<T> {
    /// Plans, reorders and tiles `m`. This is the preprocessing step
    /// whose cost the paper reports separately (§5.4).
    pub fn prepare(m: &CsrMatrix<T>, config: &EngineConfig) -> Self {
        let start = Instant::now();
        let plan = plan_reordering(m, &config.reorder);
        let (reordered, nnz_map) = m.permute_rows_with_map(&plan.row_perm);
        let aspt = AsptMatrix::build(&reordered, &config.reorder.aspt);
        let preprocessing = start.elapsed();
        Self {
            plan,
            aspt,
            reordered,
            nnz_map,
            preprocessing,
            original_ncols: m.ncols(),
        }
    }

    /// The reordering plan that was applied.
    pub fn plan(&self) -> &ReorderPlan {
        &self.plan
    }

    /// The ASpT decomposition executed by the kernels.
    pub fn aspt(&self) -> &AsptMatrix<T> {
        &self.aspt
    }

    /// Wall-clock preprocessing time (reorder planning + permutation +
    /// tiling).
    pub fn preprocessing_time(&self) -> Duration {
        self.preprocessing
    }

    /// Remainder processing order, if round 2 chose one.
    fn remainder_order(&self) -> Option<&Permutation> {
        self.plan
            .round2_applied
            .then_some(&self.plan.remainder_order)
    }

    /// `Y = S · X`, rows of `Y` in the original row order of `S`.
    pub fn spmm(&self, x: &DenseMatrix<T>) -> Result<DenseMatrix<T>, SparseError> {
        let mut y = DenseMatrix::zeros(self.aspt.nrows(), x.ncols());
        self.spmm_into(x, &mut y)?;
        Ok(y)
    }

    /// Like [`Self::spmm`], writing into a caller-provided output —
    /// iterative applications reuse one allocation across iterations.
    ///
    /// # Errors
    /// Fails on operand shape mismatches (`y` must be
    /// `S.nrows × x.ncols`).
    pub fn spmm_into(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<(), SparseError> {
        if y.nrows() != self.aspt.nrows() || y.ncols() != x.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: format!("Y of {} x {}", self.aspt.nrows(), x.ncols()),
                got: format!("{} x {}", y.nrows(), y.ncols()),
            });
        }
        let y_reord = spmm_aspt(&self.aspt, x)?;
        if self.plan.row_perm.is_identity() {
            y.data_mut().copy_from_slice(y_reord.data());
            return Ok(());
        }
        for new in 0..y_reord.nrows() {
            let old = self.plan.row_perm.old_of(new) as usize;
            y.row_mut(old).copy_from_slice(y_reord.row(new));
        }
        Ok(())
    }

    /// Like [`Self::sddmm`], writing into a caller-provided output
    /// buffer of length `nnz` (original nonzero order).
    ///
    /// # Errors
    /// Fails on operand shape mismatches or a wrong output length.
    pub fn sddmm_into(
        &self,
        x: &DenseMatrix<T>,
        y: &DenseMatrix<T>,
        out: &mut [T],
    ) -> Result<(), SparseError> {
        if out.len() != self.nnz_map.len() {
            return Err(SparseError::DimensionMismatch {
                expected: format!("output of length nnz ({})", self.nnz_map.len()),
                got: format!("{}", out.len()),
            });
        }
        let vals = self.sddmm(x, y)?;
        out.copy_from_slice(&vals);
        Ok(())
    }

    /// Alg 2 SDDMM; the returned values parallel the *original*
    /// matrix's `values()` array.
    pub fn sddmm(&self, x: &DenseMatrix<T>, y: &DenseMatrix<T>) -> Result<Vec<T>, SparseError> {
        // the kernel reads Y rows in reordered row space
        let y_perm;
        let y_for_kernel = if self.plan.row_perm.is_identity() {
            y
        } else {
            let k = y.ncols();
            let mut p = DenseMatrix::zeros(y.nrows(), k);
            for new in 0..y.nrows() {
                let old = self.plan.row_perm.old_of(new) as usize;
                p.row_mut(new).copy_from_slice(y.row(old));
            }
            y_perm = p;
            &y_perm
        };
        let vals_reord = sddmm_aspt(&self.aspt, x, y_for_kernel, self.reordered.rowptr())?;
        if self.plan.row_perm.is_identity() {
            return Ok(vals_reord);
        }
        let mut out = vec![T::ZERO; vals_reord.len()];
        for (j, v) in vals_reord.into_iter().enumerate() {
            out[self.nnz_map[j]] = v;
        }
        Ok(out)
    }

    /// Simulated SpMM performance of this engine's configuration
    /// (ASpT-RR when reordering was applied, ASpT-NR otherwise).
    pub fn simulate_spmm(&self, k: usize, device: &DeviceConfig) -> SimReport {
        simulate_spmm_aspt(&self.aspt, self.remainder_order(), k, device)
    }

    /// Simulated SDDMM performance.
    pub fn simulate_sddmm(&self, k: usize, device: &DeviceConfig) -> SimReport {
        simulate_sddmm_aspt(&self.aspt, self.remainder_order(), k, device)
    }

    /// Number of columns of the original matrix (`X` must have this
    /// many rows).
    pub fn ncols(&self) -> usize {
        self.original_ncols
    }

    /// Refreshes the sparse matrix's values (structure unchanged),
    /// keeping the reordering and tiling. `values` is in the *original*
    /// matrix's nonzero order. This is how iterative applications
    /// (gradient descent, §5.4) amortise preprocessing: pay for
    /// reorder+tile once, update values every iteration.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the matrix's nnz.
    pub fn update_values(&mut self, values: &[T]) {
        assert_eq!(
            values.len(),
            self.nnz_map.len(),
            "value array must match the matrix's nnz"
        );
        let reordered_vals = self.reordered.values_mut();
        for (j, &old) in self.nnz_map.iter().enumerate() {
            reordered_vals[j] = values[old];
        }
        // borrow juggling: clone the (small) value slice for the tiles
        let vals: Vec<T> = self.reordered.values().to_vec();
        self.aspt.update_values(&vals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sddmm::sddmm_rowwise_seq;
    use crate::spmm::spmm_rowwise_seq;
    use spmm_aspt::AsptConfig;
    use spmm_data::generators;
    use spmm_reorder::ReorderPolicy;

    fn cfg() -> EngineConfig {
        EngineConfig {
            reorder: ReorderConfig {
                aspt: AsptConfig {
                    panel_height: 16,
                    min_col_nnz: 2,
                    tile_width: 32,
                },
                ..Default::default()
            },
        }
    }

    #[test]
    fn spmm_results_match_reference_despite_reordering() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg());
        assert!(engine.plan().round1_applied, "fixture must trigger reordering");
        let x = generators::random_dense::<f64>(m.ncols(), 16, 7);
        let expected = spmm_rowwise_seq(&m, &x).unwrap();
        let got = engine.spmm(&x).unwrap();
        assert!(
            expected.max_abs_diff(&got) < 1e-10,
            "reordering must be invisible in results"
        );
    }

    #[test]
    fn sddmm_results_match_reference_despite_reordering() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 5);
        let engine = Engine::prepare(&m, &cfg());
        assert!(engine.plan().round1_applied);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 1);
        let y = generators::random_dense::<f64>(m.nrows(), 8, 2);
        let expected = sddmm_rowwise_seq(&m, &x, &y).unwrap();
        let got = engine.sddmm(&x, &y).unwrap();
        let max = expected
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max < 1e-10, "max deviation {max}");
    }

    #[test]
    fn identity_reorder_path() {
        // well-clustered matrix: both rounds skipped, outputs flow
        // through without permutation
        let m = generators::block_diagonal::<f64>(8, 32, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg());
        assert!(!engine.plan().needs_reordering());
        let x = generators::random_dense::<f64>(m.ncols(), 4, 9);
        let expected = spmm_rowwise_seq(&m, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
    }

    #[test]
    fn preprocessing_time_is_recorded() {
        let m = generators::uniform_random::<f64>(256, 256, 8, 1);
        let engine = Engine::prepare(&m, &cfg());
        assert!(engine.preprocessing_time() > Duration::ZERO);
    }

    #[test]
    fn simulation_reports_are_consistent() {
        let m = generators::shuffled_block_diagonal::<f32>(16, 16, 32, 12, 9);
        let engine = Engine::prepare(&m, &cfg());
        let device = DeviceConfig::p100();
        let spmm = engine.simulate_spmm(32, &device);
        let sddmm = engine.simulate_sddmm(32, &device);
        assert_eq!(spmm.flops, 2 * m.nnz() as u64 * 32);
        assert!(sddmm.flops >= 2 * m.nnz() as u64 * 32);
        assert!(spmm.time_s > 0.0 && sddmm.time_s > 0.0);
    }

    #[test]
    fn spmm_into_reuses_buffer_and_checks_shape() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 11);
        let engine = Engine::prepare(&m, &cfg());
        let x = generators::random_dense::<f64>(m.ncols(), 8, 2);
        let mut y = DenseMatrix::zeros(m.nrows(), 8);
        engine.spmm_into(&x, &mut y).unwrap();
        assert!(spmm_rowwise_seq(&m, &x).unwrap().max_abs_diff(&y) < 1e-10);
        // reuse: second call overwrites, not accumulates
        engine.spmm_into(&x, &mut y).unwrap();
        assert!(spmm_rowwise_seq(&m, &x).unwrap().max_abs_diff(&y) < 1e-10);
        // wrong shape rejected
        let mut bad = DenseMatrix::zeros(m.nrows() + 1, 8);
        assert!(engine.spmm_into(&x, &mut bad).is_err());
    }

    #[test]
    fn sddmm_into_matches_sddmm() {
        let m = generators::shuffled_block_diagonal::<f64>(32, 8, 24, 8, 13);
        let engine = Engine::prepare(&m, &cfg());
        let x = generators::random_dense::<f64>(m.ncols(), 4, 1);
        let y = generators::random_dense::<f64>(m.nrows(), 4, 2);
        let expected = engine.sddmm(&x, &y).unwrap();
        let mut out = vec![0.0f64; m.nnz()];
        engine.sddmm_into(&x, &y, &mut out).unwrap();
        assert_eq!(out, expected);
        let mut short = vec![0.0f64; m.nnz() - 1];
        assert!(engine.sddmm_into(&x, &y, &mut short).is_err());
    }

    #[test]
    fn update_values_preserves_correctness() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 7);
        let mut engine = Engine::prepare(&m, &cfg());
        assert!(engine.plan().round1_applied);
        // change every value; the engine must track without re-tiling
        let new_values: Vec<f64> = (0..m.nnz()).map(|i| (i % 17) as f64 - 8.0).collect();
        engine.update_values(&new_values);
        let mut m2 = m.clone();
        m2.values_mut().copy_from_slice(&new_values);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 5);
        let expected = spmm_rowwise_seq(&m2, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
        // SDDMM values scale too
        let y = generators::random_dense::<f64>(m.nrows(), 8, 6);
        let e = sddmm_rowwise_seq(&m2, &x, &y).unwrap();
        let g = engine.sddmm(&x, &y).unwrap();
        assert!(e.iter().zip(&g).all(|(a, b)| (a - b).abs() < 1e-10));
    }

    #[test]
    fn forced_reordering_still_correct() {
        let m = generators::block_diagonal::<f64>(8, 16, 24, 10, 11);
        let config = EngineConfig {
            reorder: ReorderConfig {
                policy: ReorderPolicy::always(),
                aspt: AsptConfig {
                    panel_height: 8,
                    min_col_nnz: 2,
                    tile_width: 16,
                },
                ..Default::default()
            },
        };
        let engine = Engine::prepare(&m, &config);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 3);
        let expected = spmm_rowwise_seq(&m, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
        let y = generators::random_dense::<f64>(m.nrows(), 8, 4);
        let e2 = sddmm_rowwise_seq(&m, &x, &y).unwrap();
        let g2 = engine.sddmm(&x, &y).unwrap();
        assert!(e2
            .iter()
            .zip(&g2)
            .all(|(a, b)| (a - b).abs() < 1e-10));
    }
}
