//! The end-to-end execution engine: Fig 5 as an object.
//!
//! [`Engine::prepare`] plans the reordering (with the §4 skip
//! heuristics), materialises the reordered matrix, builds the ASpT
//! decomposition and records the preprocessing wall-clock time (the
//! quantity of Fig 12 / Tables 3–4). The `spmm`/`sddmm` methods then
//! execute against the decomposition and return outputs **in the
//! caller's original row / nonzero order**, so reordering is invisible
//! to users of the results.

use spmm_aspt::{dense_ratio_of, AsptMatrix};
use spmm_faults::FaultPoint;
use spmm_gpu_sim::kernels::{
    simulate_sddmm_aspt, simulate_spgemm_clustered, simulate_spmm_aspt,
    simulate_spmm_aspt_kblocked, simulate_spmm_aspt_kblocked_micro, simulate_spmv_aspt,
};
use spmm_gpu_sim::{DeviceConfig, SimReport};
use spmm_reorder::{plan_region_recluster_with, plan_reordering_with, ReorderConfig, ReorderPlan};
use spmm_sparse::similarity::jaccard;
use spmm_sparse::{CsrMatrix, DenseMatrix, Permutation, Scalar, SparseError};
use spmm_telemetry::{Collector, FanoutRecorder, Recorder, RunManifest, TelemetryHandle};
use std::sync::Arc;
use std::time::Duration;

use crate::format::{FormatChoice, FormatPayload};
use crate::micro::spmm_aspt_kblocked_auto;
use crate::sddmm::sddmm_aspt_auto;
use crate::spgemm::spgemm_clustered;
use crate::spmm::spmm_aspt;
use crate::spmv::spmv_aspt;

/// Fault point at the head of [`Engine::prepare`], after the CSR
/// invariants check: an injected error surfaces exactly like a
/// planning failure ([`SparseError::InvalidStructure`]).
pub static FAULT_KERNEL_PREPARE: FaultPoint = FaultPoint::new("kernel.prepare");

/// Fault point at the head of [`Engine::execute`]: an injected error
/// surfaces like an operand validation failure.
pub static FAULT_KERNEL_EXECUTE: FaultPoint = FaultPoint::new("kernel.execute");

/// Fault point at the head of [`Engine::apply_delta`], before any
/// patching: an injected error surfaces like a delta validation
/// failure, leaving the engine untouched.
pub static FAULT_KERNEL_DELTA: FaultPoint = FaultPoint::new("kernel.delta");

/// Engine construction options.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`EngineConfig::builder`] (or take [`EngineConfig::default`] and
/// mutate fields), so adding future knobs — like the telemetry handle
/// added here — stops being a breaking change.
///
/// ```
/// use spmm_kernels::EngineConfig;
///
/// let config = EngineConfig::builder().k_hint(64).build();
/// assert_eq!(config.k_hint, Some(64));
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Reordering pipeline configuration (LSH, clustering, ASpT, skip
    /// policy).
    pub reorder: ReorderConfig,
    /// Expected dense-operand width `k`, when the caller knows it up
    /// front. Used as the default for profiling/simulation and recorded
    /// in the run manifest; it does not change kernel results.
    pub k_hint: Option<usize>,
    /// Telemetry sink. The engine always keeps an internal collector
    /// for its [`PrepareReport`]; when this handle is enabled, every
    /// event is teed to it as well.
    pub telemetry: TelemetryHandle,
    /// Jaccard drift past which [`Engine::apply_delta`] re-clusters a
    /// touched row panel instead of splicing its tiles through. A
    /// panel's drift is `1 − avg J(old row, new row)` over its touched
    /// rows; 0.0 re-clusters on any structural change, 1.0 never
    /// re-clusters. Default 0.5.
    pub delta_drift_threshold: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            reorder: ReorderConfig::default(),
            k_hint: None,
            telemetry: TelemetryHandle::default(),
            delta_drift_threshold: 0.5,
        }
    }
}

impl EngineConfig {
    /// Starts a builder initialised with the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }
}

/// Builder for [`EngineConfig`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets the reordering pipeline configuration.
    pub fn reorder(mut self, reorder: ReorderConfig) -> Self {
        self.config.reorder = reorder;
        self
    }

    /// Sets the expected dense-operand width.
    pub fn k_hint(mut self, k: usize) -> Self {
        self.config.k_hint = Some(k);
        self
    }

    /// Sets the telemetry sink.
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Sets the Jaccard drift threshold for incremental deltas.
    pub fn delta_drift_threshold(mut self, threshold: f64) -> Self {
        self.config.delta_drift_threshold = threshold;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Per-stage breakdown of [`Engine::prepare`], snapshotted when
/// preparation finishes.
///
/// The underlying [`RunManifest`] has one top-level `prepare` stage
/// with `plan` (containing the round-1/round-2 LSH and clustering
/// sub-stages), `permute` and `tile` children, so
/// [`PrepareReport::total`] — the sum of top-level stage durations —
/// is exactly what [`Engine::preprocessing_time`] reports.
#[derive(Debug, Clone, PartialEq)]
pub struct PrepareReport {
    manifest: RunManifest,
}

impl PrepareReport {
    /// The manifest with the stage tree and pipeline counters.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// Total preprocessing wall-clock time (sum of the manifest's
    /// top-level stage durations).
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.manifest.total_duration_ns())
    }

    /// Duration of one stage by `/`-separated path, e.g.
    /// `"prepare/plan/round1"`.
    pub fn stage_duration(&self, path: &str) -> Option<Duration> {
        self.manifest
            .find(path)
            .map(|s| Duration::from_nanos(s.duration_ns))
    }

    /// Serialises the manifest to the documented JSON schema.
    pub fn to_json(&self, pretty: bool) -> String {
        self.manifest.to_json(pretty)
    }

    /// Renders the human-readable stage tree.
    pub fn render_tree(&self) -> String {
        self.manifest.render_tree()
    }
}

/// One kernel invocation for the unified [`Engine::execute`] dispatch
/// entry.
///
/// Ops borrow their operands (and, for the `*Into` forms, the output
/// buffer), so constructing one is free. The four named `Engine`
/// methods are thin wrappers over `execute`; layers that must stay
/// op-agnostic — the serving layer, the autotuner's
/// [`crate::autotune::tuned_execute`] — pass a `KernelOp` through
/// instead of growing a method per kernel.
///
/// The enum is `#[non_exhaustive]`: downstream matches need a wildcard
/// arm, so new kernel families (SpMV and SpGEMM arrived this way) stop
/// being breaking changes.
#[derive(Debug)]
#[non_exhaustive]
pub enum KernelOp<'a, T> {
    /// `Y = S · X`, allocating the output (see [`Engine::spmm`]).
    Spmm {
        /// Dense operand, `S.ncols × k`.
        x: &'a DenseMatrix<T>,
    },
    /// `Y = S · X` into a caller-provided buffer (see
    /// [`Engine::spmm_into`]).
    SpmmInto {
        /// Dense operand, `S.ncols × k`.
        x: &'a DenseMatrix<T>,
        /// Output, `S.nrows × k`.
        y: &'a mut DenseMatrix<T>,
    },
    /// Alg 2 SDDMM, allocating the output (see [`Engine::sddmm`]).
    Sddmm {
        /// Dense operand, `S.ncols × k`.
        x: &'a DenseMatrix<T>,
        /// Dense operand, `S.nrows × k`.
        y: &'a DenseMatrix<T>,
    },
    /// `Y = S · X` over `k_block`-wide column blocks of a fused
    /// multi-RHS operand (the serving layer's batched kernel — see
    /// [`crate::spmm::spmm_aspt_kblocked`]), allocating the output.
    /// Bit-identical to [`KernelOp::Spmm`]; the block width only
    /// bounds the dense working set per sparse traversal pass.
    SpmmKBlocked {
        /// Fused dense operand, `S.ncols × k_total`.
        x: &'a DenseMatrix<T>,
        /// Column-block width each sparse traversal pass serves.
        k_block: usize,
    },
    /// SDDMM into a caller-provided values buffer (see
    /// [`Engine::sddmm_into`]).
    SddmmInto {
        /// Dense operand, `S.ncols × k`.
        x: &'a DenseMatrix<T>,
        /// Dense operand, `S.nrows × k`.
        y: &'a DenseMatrix<T>,
        /// Output of length `nnz`, original nonzero order.
        out: &'a mut [T],
    },
    /// `y = S · x`, the `k = 1` fast path (see [`Engine::spmv`]): the
    /// operand is a flat slice, not a 1-column [`DenseMatrix`], and the
    /// kernel skips the k-blocking machinery entirely.
    Spmv {
        /// Dense vector operand of length `S.ncols`.
        x: &'a [T],
    },
    /// `C = S · B`, sparse × sparse (see [`Engine::spgemm`]):
    /// Gustavson's algorithm over the reordered rows, with rows that
    /// the reordering packed into the same panel sharing one dense
    /// accumulator.
    Spgemm {
        /// Sparse right-hand operand, `S.ncols × n`.
        b: &'a CsrMatrix<T>,
    },
}

impl<T: Scalar> KernelOp<'_, T> {
    /// The kernel family this op belongs to (what the §4 trial tunes).
    pub fn op_kind(&self) -> crate::autotune::Kernel {
        match self {
            KernelOp::Spmm { .. } | KernelOp::SpmmInto { .. } | KernelOp::SpmmKBlocked { .. } => {
                crate::autotune::Kernel::Spmm
            }
            KernelOp::Sddmm { .. } | KernelOp::SddmmInto { .. } => crate::autotune::Kernel::Sddmm,
            KernelOp::Spmv { .. } => crate::autotune::Kernel::Spmv,
            KernelOp::Spgemm { .. } => crate::autotune::Kernel::Spgemm,
        }
    }

    /// Dense-operand width `k`, for the ops that have a dense operand:
    /// `Some(x.ncols())` for the SpMM/SDDMM families, `Some(1)` for
    /// SpMV, `None` for SpGEMM (no dense operand at all).
    pub fn k(&self) -> Option<usize> {
        match self {
            KernelOp::Spmm { x }
            | KernelOp::SpmmInto { x, .. }
            | KernelOp::SpmmKBlocked { x, .. }
            | KernelOp::Sddmm { x, .. }
            | KernelOp::SddmmInto { x, .. } => Some(x.ncols()),
            KernelOp::Spmv { .. } => Some(1),
            KernelOp::Spgemm { .. } => None,
        }
    }
}

/// What [`Engine::execute`] produced, matching the [`KernelOp`] shape:
/// `Spmm → Dense`, `Sddmm → Values`, `Spmv → Vector`,
/// `Spgemm → Sparse`, `*Into → Written`.
///
/// The enum is `#[non_exhaustive]` (new kernel families bring new
/// output shapes); prefer the typed `into_*`/`as_*` accessors, which
/// return `None` on a shape mismatch instead of forcing a match.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Output<T> {
    /// A freshly allocated SpMM result (original row order).
    Dense(DenseMatrix<T>),
    /// Freshly allocated SDDMM values (original nonzero order).
    Values(Vec<T>),
    /// A freshly allocated SpMV result (original row order).
    Vector(Vec<T>),
    /// A freshly allocated SpGEMM product (original row order).
    Sparse(CsrMatrix<T>),
    /// The op wrote into its caller-provided buffer.
    Written,
}

impl<T> Output<T> {
    /// The dense result, if this was a [`KernelOp::Spmm`]-family op.
    pub fn into_dense(self) -> Option<DenseMatrix<T>> {
        match self {
            Output::Dense(y) => Some(y),
            _ => None,
        }
    }

    /// The values result, if this was a [`KernelOp::Sddmm`].
    pub fn into_values(self) -> Option<Vec<T>> {
        match self {
            Output::Values(v) => Some(v),
            _ => None,
        }
    }

    /// The vector result, if this was a [`KernelOp::Spmv`].
    pub fn into_vector(self) -> Option<Vec<T>> {
        match self {
            Output::Vector(y) => Some(y),
            _ => None,
        }
    }

    /// The sparse product, if this was a [`KernelOp::Spgemm`].
    pub fn into_sparse(self) -> Option<CsrMatrix<T>> {
        match self {
            Output::Sparse(c) => Some(c),
            _ => None,
        }
    }

    /// Borrowing twin of [`Output::into_dense`].
    pub fn as_dense(&self) -> Option<&DenseMatrix<T>> {
        match self {
            Output::Dense(y) => Some(y),
            _ => None,
        }
    }

    /// Borrowing twin of [`Output::into_values`].
    pub fn as_values(&self) -> Option<&[T]> {
        match self {
            Output::Values(v) => Some(v),
            _ => None,
        }
    }

    /// Borrowing twin of [`Output::into_vector`].
    pub fn as_vector(&self) -> Option<&[T]> {
        match self {
            Output::Vector(y) => Some(y),
            _ => None,
        }
    }

    /// Borrowing twin of [`Output::into_sparse`].
    pub fn as_sparse(&self) -> Option<&CsrMatrix<T>> {
        match self {
            Output::Sparse(c) => Some(c),
            _ => None,
        }
    }
}

/// A prepared SpMM/SDDMM executor for one sparse matrix.
///
/// ```
/// use spmm_data::generators;
/// use spmm_kernels::{Engine, EngineConfig};
/// use spmm_kernels::spmm::spmm_rowwise_seq;
///
/// // cluster structure hidden by a row shuffle — the engine's
/// // reordering recovers it, and the results come back in the
/// // caller's original row order
/// let s = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 7);
/// let x = generators::random_dense::<f64>(s.ncols(), 8, 1);
///
/// let engine = Engine::prepare(&s, &EngineConfig::default())?;
/// assert!(engine.plan().needs_reordering());
///
/// let y = engine.spmm(&x)?;
/// let reference = spmm_rowwise_seq(&s, &x)?;
/// assert!(reference.max_abs_diff(&y) < 1e-10);
/// # Ok::<(), spmm_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine<T> {
    /// Shared so clones (and the serving layer's plan cache) reuse one
    /// plan; [`Engine::update_values`] copies-on-write, never mutating
    /// a shared instance under another user.
    plan: Arc<ReorderPlan>,
    aspt: Arc<AsptMatrix<T>>,
    /// The reordered matrix (identity reorder when round 1 skipped).
    reordered: Arc<CsrMatrix<T>>,
    /// `nnz_map[reordered_nnz] = original_nnz`.
    nnz_map: Arc<Vec<usize>>,
    report: PrepareReport,
    original_ncols: usize,
    k_hint: Option<usize>,
    /// Internal collector, kept live so execution/simulation events
    /// keep accumulating after prepare.
    collector: Arc<Collector>,
    /// The handle execution methods emit through (tees to `collector`
    /// and any caller-configured sink).
    telemetry: TelemetryHandle,
    /// The caller-configured sink alone (no internal collector), so
    /// [`Engine::apply_delta`] can wire successor engines to the same
    /// external telemetry without double-teeing this engine's collector.
    user_telemetry: TelemetryHandle,
    /// Reordering configuration retained for panel-local re-clustering
    /// under [`Engine::apply_delta`].
    reorder_config: ReorderConfig,
    /// Jaccard drift threshold for [`Engine::apply_delta`].
    delta_drift_threshold: f64,
    /// Plan-selected microkernel width (one of
    /// [`crate::micro::MICRO_WIDTHS`]), chosen during
    /// [`Engine::prepare`] when a `k_hint` is given and restored by the
    /// plan-store codec on warm start — re-selection never runs twice
    /// for the same plan. `None` runs the generic k-blocked kernels.
    micro_width: Option<usize>,
    /// Plan-selected physical layout for the SpMM family
    /// ([`crate::format::FormatPayload`] over the reordered matrix),
    /// chosen during [`Engine::prepare`] when a `k_hint` is given and
    /// restored by the plan-store codec on warm start — like
    /// `micro_width`, re-selection never runs twice for the same plan.
    /// `None` executes the incumbent CSR/ASpT path. Shared behind `Arc`
    /// so clones and the serving layer's cached plans reuse one layout.
    format: Option<Arc<FormatPayload<T>>>,
}

impl<T: Scalar> Engine<T> {
    /// Plans, reorders and tiles `m`. This is the preprocessing step
    /// whose cost the paper reports separately (§5.4); the per-stage
    /// breakdown is available as [`Engine::report`].
    ///
    /// # Errors
    /// Fails with [`SparseError::InvalidStructure`] when `m` violates
    /// the CSR invariants (see `CsrMatrix::check_invariants`).
    pub fn prepare(m: &CsrMatrix<T>, config: &EngineConfig) -> Result<Self, SparseError> {
        m.check_invariants()?;
        FAULT_KERNEL_PREPARE
            .fire()
            .map_err(|e| SparseError::InvalidStructure(e.to_string()))?;
        let collector = Arc::new(Collector::new());
        let telemetry = if config.telemetry.is_enabled() {
            TelemetryHandle::new(Arc::new(FanoutRecorder::new(vec![
                collector.clone() as Arc<dyn Recorder>,
                config.telemetry.recorder(),
            ])))
        } else {
            TelemetryHandle::new(collector.clone())
        };
        telemetry.meta("nrows", &m.nrows().to_string());
        telemetry.meta("ncols", &m.ncols().to_string());
        telemetry.meta("nnz", &m.nnz().to_string());
        if let Some(k) = config.k_hint {
            telemetry.meta("k_hint", &k.to_string());
        }
        let (plan, reordered, nnz_map, aspt) = {
            let _prepare = telemetry.span("prepare");
            let plan = {
                let _span = telemetry.span("plan");
                plan_reordering_with(m, &config.reorder, &telemetry)
            };
            let (reordered, nnz_map) = {
                let _span = telemetry.span("permute");
                m.permute_rows_with_map(&plan.row_perm)
            };
            let aspt = {
                let _span = telemetry.span("tile");
                AsptMatrix::build_with(&reordered, &config.reorder.aspt, &telemetry)
            };
            (plan, reordered, nnz_map, aspt)
        };
        let report = PrepareReport {
            manifest: collector.manifest(),
        };
        telemetry.meta(
            "preprocessing_ns",
            &report.manifest.total_duration_ns().to_string(),
        );
        let mut engine = Self {
            plan: Arc::new(plan),
            aspt: Arc::new(aspt),
            reordered: Arc::new(reordered),
            nnz_map: Arc::new(nnz_map),
            report,
            original_ncols: m.ncols(),
            k_hint: config.k_hint,
            collector,
            telemetry,
            user_telemetry: config.telemetry.clone(),
            reorder_config: config.reorder,
            delta_drift_threshold: config.delta_drift_threshold,
            micro_width: None,
            format: None,
        };
        // plan-time microkernel selection (§4 trial-and-error, one
        // level below the variant choice): simulate the register-
        // blocked widths once here, record the winner, and let the
        // plan-store codec carry it so warm starts never re-select
        if let Some(k) = engine.k_hint {
            let _span = engine.telemetry.span("prepare.micro_select");
            engine.micro_width =
                crate::autotune::choose_micro_width(&engine, k, &DeviceConfig::p100());
            if let Some(w) = engine.micro_width {
                engine.telemetry.meta("micro_width", &w.to_string());
            }
        }
        // plan-time format selection (the zoo): race SELL-C-σ / CSB
        // layouts of the reordered matrix against the incumbent ASpT
        // configuration on the transaction model; a challenger is
        // adopted only on a strict win, and the plan-store codec
        // carries the built payload so warm starts never re-select
        if let Some(k) = engine.k_hint {
            let _span = engine.telemetry.span("prepare.format_select");
            let (payload, trial) =
                crate::autotune::choose_format(&engine, k, &DeviceConfig::p100());
            engine.format = payload.map(Arc::new);
            engine.telemetry.meta("format", &trial.chosen.label());
            engine
                .telemetry
                .gauge("tune.format.speedup", trial.speedup_vs_incumbent());
        }
        Ok(engine)
    }

    /// Rehydrates an engine from previously prepared parts — the plan
    /// store's path around [`Engine::prepare`]. No planning, no LSH, no
    /// tiling: the deserialized plan, reordered CSR, nonzero map and
    /// tiling are validated for mutual consistency and wired together.
    ///
    /// The rebuilt engine's [`Engine::preprocessing_time`] is zero (its
    /// report has no stages): nothing was preprocessed here, which is
    /// exactly what cross-process amortization claims.
    ///
    /// # Errors
    /// Fails with [`SparseError::InvalidStructure`] when the parts
    /// disagree: CSR invariants, permutation/row-count mismatches, a
    /// nonzero map that is not a bijection, or a tiling that does not
    /// reconstruct the reordered matrix.
    pub fn from_parts(
        plan: ReorderPlan,
        aspt: AsptMatrix<T>,
        reordered: CsrMatrix<T>,
        nnz_map: Vec<usize>,
        k_hint: Option<usize>,
        telemetry: &TelemetryHandle,
    ) -> Result<Self, SparseError> {
        let bad = |msg: String| Err(SparseError::InvalidStructure(msg));
        reordered.check_invariants()?;
        if plan.row_perm.len() != reordered.nrows() {
            return bad(format!(
                "row permutation covers {} rows, matrix has {}",
                plan.row_perm.len(),
                reordered.nrows()
            ));
        }
        if plan.remainder_order.len() != reordered.nrows() {
            return bad(format!(
                "remainder order covers {} rows, matrix has {}",
                plan.remainder_order.len(),
                reordered.nrows()
            ));
        }
        if nnz_map.len() != reordered.nnz() {
            return bad(format!(
                "nnz map has {} entries, matrix has {} nonzeros",
                nnz_map.len(),
                reordered.nnz()
            ));
        }
        let mut seen = vec![false; nnz_map.len()];
        for &old in &nnz_map {
            if old >= nnz_map.len() || seen[old] {
                return bad("nnz map is not a bijection on the nonzeros".to_string());
            }
            seen[old] = true;
        }
        if aspt.nrows() != reordered.nrows()
            || aspt.ncols() != reordered.ncols()
            || aspt.nnz() != reordered.nnz()
        {
            return bad(format!(
                "tiling shape {}x{}+{}nnz disagrees with matrix {}x{}+{}nnz",
                aspt.nrows(),
                aspt.ncols(),
                aspt.nnz(),
                reordered.nrows(),
                reordered.ncols(),
                reordered.nnz()
            ));
        }
        if aspt.to_csr() != reordered {
            return bad("tiling does not reconstruct the reordered matrix".to_string());
        }
        let collector = Arc::new(Collector::new());
        let user_telemetry = telemetry.clone();
        let telemetry = if telemetry.is_enabled() {
            TelemetryHandle::new(Arc::new(FanoutRecorder::new(vec![
                collector.clone() as Arc<dyn Recorder>,
                telemetry.recorder(),
            ])))
        } else {
            TelemetryHandle::new(collector.clone())
        };
        let report = PrepareReport {
            manifest: collector.manifest(),
        };
        let reorder_config = ReorderConfig::builder().aspt(*aspt.config()).build();
        Ok(Self {
            original_ncols: reordered.ncols(),
            plan: Arc::new(plan),
            aspt: Arc::new(aspt),
            reordered: Arc::new(reordered),
            nnz_map: Arc::new(nnz_map),
            report,
            k_hint,
            collector,
            telemetry,
            user_telemetry,
            reorder_config,
            delta_drift_threshold: 0.5,
            micro_width: None,
            format: None,
        })
    }

    /// The plan-selected microkernel width, if one was chosen (during
    /// [`Engine::prepare`] with a `k_hint`, or restored from a stored
    /// plan). `None` means the generic k-blocked kernels run.
    pub fn micro_width(&self) -> Option<usize> {
        self.micro_width
    }

    /// Overrides the microkernel width — the plan-store codec's hook
    /// for restoring a recorded choice without re-running selection.
    /// Widths outside [`crate::micro::MICRO_WIDTHS`] simply route to
    /// the generic kernels at dispatch.
    pub fn set_micro_width(&mut self, width: Option<usize>) {
        self.micro_width = width;
    }

    /// The plan-selected physical layout for the SpMM family: `Csr`
    /// (the incumbent ASpT path) unless format selection chose a
    /// format-zoo layout during [`Engine::prepare`] or one was restored
    /// from a stored plan.
    pub fn format_choice(&self) -> FormatChoice {
        self.format
            .as_deref()
            .map_or(FormatChoice::Csr, FormatPayload::choice)
    }

    /// The built format payload the SpMM family executes against, when
    /// a non-CSR format was chosen.
    pub fn format_payload(&self) -> Option<&FormatPayload<T>> {
        self.format.as_deref()
    }

    /// Overrides the format payload — the plan-store codec's hook for
    /// restoring a persisted layout without re-running selection, and
    /// the delta path's revert-to-CSR hook (`None`).
    pub fn set_format(&mut self, payload: Option<FormatPayload<T>>) {
        self.format = payload.map(Arc::new);
    }

    /// The engine's internal telemetry handle, for same-crate selection
    /// code ([`crate::autotune::choose_format`]) that emits counters
    /// while holding `&Engine`.
    pub(crate) fn telemetry_handle(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// The reordering plan that was applied.
    pub fn plan(&self) -> &ReorderPlan {
        &self.plan
    }

    /// The ASpT decomposition executed by the kernels.
    pub fn aspt(&self) -> &AsptMatrix<T> {
        &self.aspt
    }

    /// The ASpT decomposition behind its shared handle — concurrent
    /// executors (the serving layer's cached plans) take this instead
    /// of cloning the tiles.
    pub fn aspt_shared(&self) -> Arc<AsptMatrix<T>> {
        Arc::clone(&self.aspt)
    }

    /// Wall-clock preprocessing time (reorder planning + permutation +
    /// tiling), the sum of the [`Engine::report`] stage durations.
    pub fn preprocessing_time(&self) -> Duration {
        self.report.total()
    }

    /// Per-stage preprocessing breakdown, snapshotted when
    /// [`Engine::prepare`] returned.
    pub fn report(&self) -> &PrepareReport {
        &self.report
    }

    /// Live run manifest: the prepare stages plus everything the
    /// execution and simulation methods have recorded since.
    pub fn manifest(&self) -> RunManifest {
        self.collector.manifest()
    }

    /// The `k` hint this engine was configured with, if any.
    pub fn k_hint(&self) -> Option<usize> {
        self.k_hint
    }

    /// The reordered matrix the kernels execute against (identity
    /// reorder when round 1 was skipped). Exposed for the plan-store
    /// codec; results from `spmm`/`sddmm` are always mapped back to the
    /// original order, so normal callers never need this.
    pub fn reordered(&self) -> &CsrMatrix<T> {
        &self.reordered
    }

    /// The nonzero map: `nnz_map()[reordered_nnz] = original_nnz`.
    /// Exposed for the plan-store codec.
    pub fn nnz_map(&self) -> &[usize] {
        &self.nnz_map
    }

    /// Remainder processing order, if round 2 chose one.
    fn remainder_order(&self) -> Option<&Permutation> {
        self.plan
            .round2_applied
            .then_some(&self.plan.remainder_order)
    }

    /// The unified dispatch entry: every kernel invocation — the four
    /// named methods below, the serving layer, the autotuner — funnels
    /// through here, so new ops plug in without widening every layer.
    ///
    /// ```
    /// use spmm_data::generators;
    /// use spmm_kernels::{Engine, EngineConfig, KernelOp, Output};
    ///
    /// let s = generators::shuffled_block_diagonal::<f64>(16, 8, 24, 8, 7);
    /// let x = generators::random_dense::<f64>(s.ncols(), 4, 1);
    /// let engine = Engine::prepare(&s, &EngineConfig::default())?;
    /// let y = engine.execute(KernelOp::Spmm { x: &x })?.into_dense().unwrap();
    /// assert_eq!(y.nrows(), s.nrows());
    /// # Ok::<(), spmm_sparse::SparseError>(())
    /// ```
    ///
    /// # Errors
    /// Fails on operand shape mismatches, like the named methods.
    pub fn execute(&self, op: KernelOp<'_, T>) -> Result<Output<T>, SparseError> {
        FAULT_KERNEL_EXECUTE
            .fire()
            .map_err(|e| SparseError::InvalidStructure(e.to_string()))?;
        match op {
            KernelOp::Spmm { x } => {
                let mut y = DenseMatrix::zeros(self.aspt.nrows(), x.ncols());
                self.spmm_into_impl(x, &mut y)?;
                Ok(Output::Dense(y))
            }
            KernelOp::SpmmInto { x, y } => {
                self.spmm_into_impl(x, y)?;
                Ok(Output::Written)
            }
            KernelOp::SpmmKBlocked { x, k_block } => {
                let _span = self.telemetry.span("exec.spmm");
                self.record_exec_counters();
                // format routing: the chosen layout's column-blocked
                // kernel is bit-identical to its own whole-k kernel,
                // so the batch path gives the same answers as the
                // unbatched one for whichever format won
                let y_reord = match self.format.as_deref() {
                    Some(f) => f.spmm_kblocked(x, k_block)?,
                    None => spmm_aspt_kblocked_auto(&self.aspt, x, k_block)?,
                };
                let mut y = DenseMatrix::zeros(self.aspt.nrows(), x.ncols());
                self.unpermute_rows(&y_reord, &mut y);
                Ok(Output::Dense(y))
            }
            KernelOp::Sddmm { x, y } => {
                let vals_reord = self.sddmm_reordered_vals(x, y)?;
                if self.plan.row_perm.is_identity() {
                    return Ok(Output::Values(vals_reord));
                }
                let mut out = vec![T::ZERO; vals_reord.len()];
                self.scatter_to_source_order(vals_reord, &mut out);
                Ok(Output::Values(out))
            }
            KernelOp::SddmmInto { x, y, out } => {
                if out.len() != self.nnz_map.len() {
                    return Err(SparseError::DimensionMismatch {
                        expected: format!("output of length nnz ({})", self.nnz_map.len()),
                        got: format!("{}", out.len()),
                    });
                }
                // write the caller's buffer directly — no intermediate
                // source-order allocation
                let vals_reord = self.sddmm_reordered_vals(x, y)?;
                if self.plan.row_perm.is_identity() {
                    out.copy_from_slice(&vals_reord);
                } else {
                    self.scatter_to_source_order(vals_reord, out);
                }
                Ok(Output::Written)
            }
            KernelOp::Spmv { x } => {
                let _span = self.telemetry.span("exec.spmv");
                self.record_exec_counters();
                let y_reord = spmv_aspt(&self.aspt, x)?;
                if self.plan.row_perm.is_identity() {
                    return Ok(Output::Vector(y_reord));
                }
                let mut y = vec![T::ZERO; y_reord.len()];
                for (new, v) in y_reord.into_iter().enumerate() {
                    y[self.plan.row_perm.old_of(new) as usize] = v;
                }
                Ok(Output::Vector(y))
            }
            KernelOp::Spgemm { b } => {
                let _span = self.telemetry.span("exec.spgemm");
                self.record_exec_counters();
                // Gustavson over the reordered rows: rows the plan
                // packed into one panel share a dense accumulator
                let c_reord =
                    spgemm_clustered(&self.reordered, b, self.aspt.config().panel_height)?;
                if self.plan.row_perm.is_identity() {
                    return Ok(Output::Sparse(c_reord));
                }
                Ok(Output::Sparse(
                    c_reord.permute_rows(&self.plan.row_perm.inverse()),
                ))
            }
        }
    }

    /// `Y = S · X`, rows of `Y` in the original row order of `S`.
    /// Wrapper over [`Engine::execute`].
    pub fn spmm(&self, x: &DenseMatrix<T>) -> Result<DenseMatrix<T>, SparseError> {
        match self.execute(KernelOp::Spmm { x })? {
            Output::Dense(y) => Ok(y),
            _ => unreachable!("Spmm ops produce Dense outputs"),
        }
    }

    /// Like [`Self::spmm`], writing into a caller-provided output —
    /// iterative applications reuse one allocation across iterations.
    /// Wrapper over [`Engine::execute`].
    ///
    /// # Errors
    /// Fails on operand shape mismatches (`y` must be
    /// `S.nrows × x.ncols`).
    pub fn spmm_into(&self, x: &DenseMatrix<T>, y: &mut DenseMatrix<T>) -> Result<(), SparseError> {
        self.execute(KernelOp::SpmmInto { x, y }).map(|_| ())
    }

    fn spmm_into_impl(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<(), SparseError> {
        if y.nrows() != self.aspt.nrows() || y.ncols() != x.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: format!("Y of {} x {}", self.aspt.nrows(), x.ncols()),
                got: format!("{} x {}", y.nrows(), y.ncols()),
            });
        }
        let _span = self.telemetry.span("exec.spmm");
        self.record_exec_counters();
        // format routing: the zoo kernels fold each row in ascending-
        // column order (bit-exact vs the row-wise reference); the ASpT
        // path folds tiles before the remainder. On exactly-
        // representable operands — the serving layer's exactness bars —
        // every path agrees bit for bit.
        let y_reord = match self.format.as_deref() {
            Some(f) => f.spmm(x)?,
            None => spmm_aspt(&self.aspt, x)?,
        };
        self.unpermute_rows(&y_reord, y);
        Ok(())
    }

    /// Scatters a reordered-row-space result back into the caller's
    /// original row order.
    fn unpermute_rows(&self, y_reord: &DenseMatrix<T>, y: &mut DenseMatrix<T>) {
        if self.plan.row_perm.is_identity() {
            y.data_mut().copy_from_slice(y_reord.data());
            return;
        }
        for new in 0..y_reord.nrows() {
            let old = self.plan.row_perm.old_of(new) as usize;
            y.row_mut(old).copy_from_slice(y_reord.row(new));
        }
    }

    /// Like [`Self::sddmm`], writing into a caller-provided output
    /// buffer of length `nnz` (original nonzero order). Wrapper over
    /// [`Engine::execute`].
    ///
    /// # Errors
    /// Fails on operand shape mismatches or a wrong output length.
    pub fn sddmm_into(
        &self,
        x: &DenseMatrix<T>,
        y: &DenseMatrix<T>,
        out: &mut [T],
    ) -> Result<(), SparseError> {
        self.execute(KernelOp::SddmmInto { x, y, out }).map(|_| ())
    }

    /// Alg 2 SDDMM; the returned values parallel the *original*
    /// matrix's `values()` array. Wrapper over [`Engine::execute`].
    pub fn sddmm(&self, x: &DenseMatrix<T>, y: &DenseMatrix<T>) -> Result<Vec<T>, SparseError> {
        match self.execute(KernelOp::Sddmm { x, y })? {
            Output::Values(v) => Ok(v),
            _ => unreachable!("Sddmm ops produce Values outputs"),
        }
    }

    /// `y = S · x`, rows of `y` in the original row order of `S` — the
    /// `k = 1` fast path over the dense tiles, bit-identical to
    /// [`Engine::spmm`] with a 1-column operand. Wrapper over
    /// [`Engine::execute`].
    ///
    /// # Errors
    /// Fails when `x.len()` differs from `S.ncols`.
    pub fn spmv(&self, x: &[T]) -> Result<Vec<T>, SparseError> {
        match self.execute(KernelOp::Spmv { x })? {
            Output::Vector(y) => Ok(y),
            _ => unreachable!("Spmv ops produce Vector outputs"),
        }
    }

    /// `C = S · B`, rows of `C` in the original row order of `S` —
    /// Gustavson's algorithm with panel-wise accumulator reuse over the
    /// reordered rows. Wrapper over [`Engine::execute`].
    ///
    /// # Errors
    /// Fails when `B.nrows` differs from `S.ncols`.
    pub fn spgemm(&self, b: &CsrMatrix<T>) -> Result<CsrMatrix<T>, SparseError> {
        match self.execute(KernelOp::Spgemm { b })? {
            Output::Sparse(c) => Ok(c),
            _ => unreachable!("Spgemm ops produce Sparse outputs"),
        }
    }

    /// Runs the SDDMM kernel and returns its values in *reordered*
    /// nonzero order; callers scatter back to source order themselves
    /// (directly into their own buffer, when they have one).
    fn sddmm_reordered_vals(
        &self,
        x: &DenseMatrix<T>,
        y: &DenseMatrix<T>,
    ) -> Result<Vec<T>, SparseError> {
        let _span = self.telemetry.span("exec.sddmm");
        self.record_exec_counters();
        // the kernel reads Y rows in reordered row space
        let y_perm;
        let y_for_kernel = if self.plan.row_perm.is_identity() {
            y
        } else {
            let k = y.ncols();
            let mut p = DenseMatrix::zeros(y.nrows(), k);
            for new in 0..y.nrows() {
                let old = self.plan.row_perm.old_of(new) as usize;
                p.row_mut(new).copy_from_slice(y.row(old));
            }
            y_perm = p;
            &y_perm
        };
        sddmm_aspt_auto(
            &self.aspt,
            x,
            y_for_kernel,
            self.reordered.rowptr(),
            self.micro_width,
        )
    }

    /// Scatters reordered-nonzero-order values into source order:
    /// `out[nnz_map[j]] = vals_reord[j]`.
    fn scatter_to_source_order(&self, vals_reord: Vec<T>, out: &mut [T]) {
        for (j, v) in vals_reord.into_iter().enumerate() {
            out[self.nnz_map[j]] = v;
        }
    }

    /// Number of nonzeros processed per kernel call, with the
    /// dense-tile / sparse-remainder split.
    fn record_exec_counters(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry
            .counter("exec.nnz_processed", self.aspt.nnz() as u64);
        self.telemetry
            .counter("exec.nnz_dense", self.aspt.nnz_dense() as u64);
        self.telemetry.counter(
            "exec.nnz_sparse",
            (self.aspt.nnz() - self.aspt.nnz_dense()) as u64,
        );
    }

    /// Simulated SpMM performance of this engine's configuration
    /// (ASpT-RR when reordering was applied, ASpT-NR otherwise).
    pub fn simulate_spmm(&self, k: usize, device: &DeviceConfig) -> SimReport {
        let _span = self.telemetry.span("sim.spmm");
        let report = simulate_spmm_aspt(&self.aspt, self.remainder_order(), k, device);
        report.traffic.record_to(&self.telemetry, "sim.spmm");
        report
    }

    /// Simulated SpMM performance of the path [`Engine::spmm`] would
    /// actually take: the chosen format's kernel when a non-CSR format
    /// won the plan-time trial, the ASpT path otherwise. (Kept separate
    /// from [`Engine::simulate_spmm`], which always models the ASpT
    /// configuration — that is what [`crate::autotune::choose_variant`]
    /// and the format trial itself rank against.)
    pub fn simulate_spmm_chosen(&self, k: usize, device: &DeviceConfig) -> SimReport {
        match self.format.as_deref() {
            Some(f) => {
                let _span = self.telemetry.span("sim.spmm");
                let report = f.simulate_spmm(k, device);
                report.traffic.record_to(&self.telemetry, "sim.spmm");
                report
            }
            None => self.simulate_spmm(k, device),
        }
    }

    /// Simulated performance of the column-blocked SpMM kernel on a
    /// fused multi-RHS operand of total width `k` (the batched
    /// execution path, [`KernelOp::SpmmKBlocked`]) — how the autotuner
    /// and the serving layer model fused traffic.
    pub fn simulate_spmm_kblocked(
        &self,
        k: usize,
        k_block: usize,
        device: &DeviceConfig,
    ) -> SimReport {
        let _span = self.telemetry.span("sim.spmm_kblocked");
        let report =
            simulate_spmm_aspt_kblocked(&self.aspt, self.remainder_order(), k, k_block, device);
        report
            .traffic
            .record_to(&self.telemetry, "sim.spmm_kblocked");
        report
    }

    /// Simulated performance of the *register-blocked microkernel*
    /// variant of the column-blocked SpMM kernel: the same pass
    /// structure as [`Engine::simulate_spmm_kblocked`], plus spill
    /// traffic when `2 · k_block` accumulator/operand registers per
    /// thread exceed the modeled register file. This is what
    /// [`crate::autotune::choose_micro_width`] ranks at plan time.
    pub fn simulate_spmm_kblocked_micro(
        &self,
        k: usize,
        k_block: usize,
        device: &DeviceConfig,
    ) -> SimReport {
        let _span = self.telemetry.span("sim.spmm_kblocked_micro");
        let report = simulate_spmm_aspt_kblocked_micro(
            &self.aspt,
            self.remainder_order(),
            k,
            k_block,
            device,
        );
        report
            .traffic
            .record_to(&self.telemetry, "sim.spmm_kblocked_micro");
        report
    }

    /// Simulated SDDMM performance.
    pub fn simulate_sddmm(&self, k: usize, device: &DeviceConfig) -> SimReport {
        let _span = self.telemetry.span("sim.sddmm");
        let report = simulate_sddmm_aspt(&self.aspt, self.remainder_order(), k, device);
        report.traffic.record_to(&self.telemetry, "sim.sddmm");
        report
    }

    /// Simulated SpMV performance (the `k = 1` transaction model over
    /// this engine's tiling).
    pub fn simulate_spmv(&self, device: &DeviceConfig) -> SimReport {
        let _span = self.telemetry.span("sim.spmv");
        let report = simulate_spmv_aspt(&self.aspt, self.remainder_order(), device);
        report.traffic.record_to(&self.telemetry, "sim.spmv");
        report
    }

    /// Simulated SpGEMM performance of this engine's configuration:
    /// the panel-clustered Gustavson transaction model over the
    /// reordered rows.
    pub fn simulate_spgemm(&self, b: &CsrMatrix<T>, device: &DeviceConfig) -> SimReport {
        let _span = self.telemetry.span("sim.spgemm");
        let report =
            simulate_spgemm_clustered(&self.reordered, b, self.aspt.config().panel_height, device);
        report.traffic.record_to(&self.telemetry, "sim.spgemm");
        report
    }

    /// Number of columns of the original matrix (`X` must have this
    /// many rows).
    pub fn ncols(&self) -> usize {
        self.original_ncols
    }

    /// Refreshes the sparse matrix's values (structure unchanged),
    /// keeping the reordering and tiling. `values` is in the *original*
    /// matrix's nonzero order. This is how iterative applications
    /// (gradient descent, §5.4) amortise preprocessing: pay for
    /// reorder+tile once, update values every iteration.
    ///
    /// When the engine's internals are shared (clones, cached plans),
    /// this copies-on-write: the value-bearing pieces are duplicated,
    /// the plan and nonzero map stay shared, and no other holder sees
    /// the new values. Shared holders refresh through
    /// [`Engine::with_updated_values`] instead.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the matrix's nnz.
    pub fn update_values(&mut self, values: &[T]) {
        assert_eq!(
            values.len(),
            self.nnz_map.len(),
            "value array must match the matrix's nnz"
        );
        // permute straight into the reordered CSR's value array (no
        // intermediate scratch), then refresh the tiles from it
        let reordered = Arc::make_mut(&mut self.reordered);
        for (slot, &old) in reordered.values_mut().iter_mut().zip(self.nnz_map.iter()) {
            *slot = values[old];
        }
        Arc::make_mut(&mut self.aspt).update_values(reordered.values());
        // the format payload carries values too: rebuild it from the
        // refreshed reordered matrix (structure unchanged, so the same
        // choice is guaranteed to still be buildable)
        if let Some(choice) = self.format.as_deref().map(FormatPayload::choice) {
            let rebuilt = FormatPayload::build(choice, &self.reordered)
                .expect("structure unchanged: format payload must rebuild");
            self.format = rebuilt.map(Arc::new);
        }
    }

    /// Maps a value array from the original nonzero order into this
    /// engine's reordered nonzero order — the pure half of
    /// [`Engine::update_values`], split out so callers can stage the
    /// permuted values without touching the engine.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the matrix's nnz.
    pub fn reorder_values(&self, values: &[T]) -> Vec<T> {
        assert_eq!(
            values.len(),
            self.nnz_map.len(),
            "value array must match the matrix's nnz"
        );
        let mut out = vec![T::ZERO; values.len()];
        for (j, &old) in self.nnz_map.iter().enumerate() {
            out[j] = values[old];
        }
        out
    }

    /// Reconstructs the *original* (pre-reordering) matrix this engine
    /// was prepared from — the inverse of the row permutation applied
    /// over the reordered CSR. Callers that fingerprint or mutate the
    /// source structure (the serving layer's delta path) use this; it
    /// costs one `O(nnz)` permutation.
    pub fn source_matrix(&self) -> CsrMatrix<T> {
        if self.plan.row_perm.is_identity() {
            (*self.reordered).clone()
        } else {
            self.reordered.permute_rows(&self.plan.row_perm.inverse())
        }
    }

    /// Incrementally re-prepares this engine for a structural delta on
    /// the *original* matrix: `added` edges are inserted, `removed`
    /// edges dropped (coordinates in original row space). Instead of a
    /// cold [`Engine::prepare`], the existing analysis is patched:
    ///
    /// 1. the source CSR is patched
    ///    ([`CsrMatrix::apply_structural_delta`], which rejects
    ///    malformed deltas up front);
    /// 2. touched rows are classified into row panels, and each touched
    ///    panel's Jaccard drift (`1 − avg J(old row, new row)`) is
    ///    measured against the configured
    ///    [`EngineConfig::delta_drift_threshold`];
    /// 3. panels past the threshold are re-clustered *locally* (the §4
    ///    round-1 decision re-run on the drifted region) with a
    ///    trial-and-error acceptance: the new order is kept only when
    ///    it improves the region's dense ratio;
    /// 4. the tiling is spliced ([`AsptMatrix::splice`]): surviving
    ///    panels keep their tiles verbatim (source indices remapped),
    ///    touched panels are re-tiled.
    ///
    /// The result is a fully validated successor engine; `self` is
    /// untouched, so a failure at any stage leaves the old engine
    /// serving. Outputs are *numerically* exact regardless of how the
    /// successor's panel assignment differs from what a from-scratch
    /// prepare would choose — reordering is invisible in results.
    ///
    /// # Errors
    /// Fails on malformed deltas ([`SparseError::DeltaOutOfBounds`],
    /// [`SparseError::DeltaDuplicate`],
    /// [`SparseError::DeltaMissingEdge`]), on injected
    /// [`FAULT_KERNEL_DELTA`] faults, or when the spliced parts fail
    /// validation.
    pub fn apply_delta(
        &self,
        added: &[(usize, usize, T)],
        removed: &[(usize, usize)],
    ) -> Result<Self, SparseError> {
        FAULT_KERNEL_DELTA
            .fire()
            .map_err(|e| SparseError::InvalidStructure(e.to_string()))?;
        let patched = self
            .source_matrix()
            .apply_structural_delta(added, removed)?;

        // touched rows, in reordered row space
        let old_perm = &self.plan.row_perm;
        let inv = old_perm.inverse();
        let mut touched_rows: Vec<usize> = added
            .iter()
            .map(|&(r, _, _)| r)
            .chain(removed.iter().map(|&(r, _)| r))
            .map(|r| inv.old_of(r) as usize)
            .collect();
        touched_rows.sort_unstable();
        touched_rows.dedup();
        let panel_height = self.aspt.config().panel_height;
        let mut touched_panels: Vec<usize> =
            touched_rows.iter().map(|&r| r / panel_height).collect();
        touched_panels.dedup();

        // tentative: the patched matrix under the unchanged permutation
        let (mut reordered, mut nnz_map) = patched.permute_rows_with_map(old_perm);

        // drift per touched panel: how far each panel's touched rows
        // moved from the structure the clustering was computed on
        let mut drifted: Vec<usize> = Vec::new();
        let mut i = 0usize;
        for &p in &touched_panels {
            let mut sim_sum = 0.0f64;
            let mut n = 0usize;
            while i < touched_rows.len() && touched_rows[i] / panel_height == p {
                let r = touched_rows[i];
                sim_sum += jaccard(self.reordered.row_cols(r), reordered.row_cols(r));
                n += 1;
                i += 1;
            }
            if 1.0 - sim_sum / n as f64 > self.delta_drift_threshold {
                drifted.push(p);
            }
        }
        self.telemetry
            .counter("delta.touched_rows", touched_rows.len() as u64);
        self.telemetry
            .counter("delta.touched_panels", touched_panels.len() as u64);
        self.telemetry
            .counter("delta.drifted_panels", drifted.len() as u64);

        // re-cluster the union of drifted panels, §4-style: re-run the
        // round-1 decision locally, keep the new order only when the
        // trial shows it improves the region's dense ratio
        let mut row_perm = old_perm.clone();
        if !drifted.is_empty() {
            let nrows = reordered.nrows();
            let region_rows: Vec<u32> = drifted
                .iter()
                .flat_map(|&p| {
                    let start = p * panel_height;
                    (start..(start + panel_height).min(nrows)).map(|r| r as u32)
                })
                .collect();
            let region = reordered.extract_rows(&region_rows);
            if let Some((local_perm, _stats)) =
                plan_region_recluster_with(&region, &self.reorder_config, &self.telemetry)
            {
                let aspt_cfg = self.reorder_config.aspt;
                let reclustered = region.permute_rows(&local_perm);
                let accepted =
                    dense_ratio_of(&reclustered, &aspt_cfg) > dense_ratio_of(&region, &aspt_cfg);
                self.telemetry
                    .counter("delta.recluster_accepted", u64::from(accepted));
                if accepted {
                    // lift the local order to an adjustment over all
                    // rows (identity outside the drifted slots), then
                    // fold it into the row permutation
                    let mut order: Vec<u32> = (0..nrows as u32).collect();
                    for (local_new, &slot) in region_rows.iter().enumerate() {
                        order[slot as usize] = region_rows[local_perm.old_of(local_new) as usize];
                    }
                    let adjust = Permutation::from_order(order)?;
                    row_perm = adjust.compose(old_perm);
                    let (re, map) = patched.permute_rows_with_map(&row_perm);
                    reordered = re;
                    nnz_map = map;
                }
            }
        }

        let aspt = self.aspt.splice(&reordered, &touched_panels)?;
        let plan = ReorderPlan {
            round1_applied: !row_perm.is_identity(),
            row_perm,
            dense_ratio_after: aspt.dense_ratio(),
            ..(*self.plan).clone()
        };
        let mut engine = Self::from_parts(
            plan,
            aspt,
            reordered,
            nnz_map,
            self.k_hint,
            &self.user_telemetry,
        )?;
        // chained deltas keep the configured knobs, not the from_parts
        // defaults
        engine.reorder_config = self.reorder_config;
        engine.delta_drift_threshold = self.delta_drift_threshold;
        engine.micro_width = self.micro_width;
        // keep the plan-time format *choice* without re-running the
        // trial; the payload must be rebuilt over the new structure. If
        // the delta made the format inapplicable (padding cap, β
        // bounds), revert to CSR — a slower answer, never a wrong one.
        match FormatPayload::build(self.format_choice(), &engine.reordered) {
            Ok(payload) => engine.format = payload.map(Arc::new),
            Err(_) => {
                engine.telemetry.counter("delta.format_reverted", 1);
                engine.format = None;
            }
        }
        Ok(engine)
    }

    /// Non-destructive [`Engine::update_values`]: a new engine with the
    /// given values that *shares* this one's reordering plan, nonzero
    /// map and telemetry — no re-planning, no re-tiling. This is how a
    /// plan cache refreshes a published `Arc<Engine>` in place: build
    /// the successor, swap the `Arc`, and in-flight requests keep their
    /// consistent snapshot.
    ///
    /// # Errors
    /// Fails with [`SparseError::DimensionMismatch`] when `values.len()`
    /// differs from the matrix's nnz (the fallible twin of
    /// `update_values`' panic, for serving paths that must not die).
    pub fn with_updated_values(&self, values: &[T]) -> Result<Self, SparseError> {
        if values.len() != self.nnz_map.len() {
            return Err(SparseError::DimensionMismatch {
                expected: format!("{} values (matrix nnz)", self.nnz_map.len()),
                got: values.len().to_string(),
            });
        }
        let mut fresh = self.clone();
        fresh.update_values(values);
        Ok(fresh)
    }
}

/// The serving layer shares one `Engine` across worker threads behind
/// `Arc`; this assertion keeps that contract load-bearing at compile
/// time.
#[allow(dead_code)]
fn engine_is_send_sync<T: Scalar>() {
    fn check<S: Send + Sync>() {}
    check::<Engine<T>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sddmm::sddmm_rowwise_seq;
    use crate::spmm::spmm_rowwise_seq;
    use spmm_aspt::AsptConfig;
    use spmm_data::generators;
    use spmm_reorder::ReorderPolicy;

    fn cfg() -> EngineConfig {
        EngineConfig::builder()
            .reorder(
                ReorderConfig::builder()
                    .aspt(AsptConfig {
                        panel_height: 16,
                        min_col_nnz: 2,
                        tile_width: 32,
                    })
                    .build(),
            )
            .build()
    }

    #[test]
    fn spmm_results_match_reference_despite_reordering() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(
            engine.plan().round1_applied,
            "fixture must trigger reordering"
        );
        let x = generators::random_dense::<f64>(m.ncols(), 16, 7);
        let expected = spmm_rowwise_seq(&m, &x).unwrap();
        let got = engine.spmm(&x).unwrap();
        assert!(
            expected.max_abs_diff(&got) < 1e-10,
            "reordering must be invisible in results"
        );
    }

    #[test]
    fn sddmm_results_match_reference_despite_reordering() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 5);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(engine.plan().round1_applied);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 1);
        let y = generators::random_dense::<f64>(m.nrows(), 8, 2);
        let expected = sddmm_rowwise_seq(&m, &x, &y).unwrap();
        let got = engine.sddmm(&x, &y).unwrap();
        let max = expected
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max < 1e-10, "max deviation {max}");
    }

    #[test]
    fn identity_reorder_path() {
        // pinned well-clustered fixture: dense ratio is exactly 1.0
        // (round 1 skipped) and the remainder is empty (round 2 finds
        // no candidates), so both skip decisions hold under any RNG
        // backend and outputs flow through without permutation
        let m = generators::pinned_block_diagonal::<f64>(8, 16, 12);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(!engine.plan().needs_reordering());
        let x = generators::random_dense::<f64>(m.ncols(), 4, 9);
        let expected = spmm_rowwise_seq(&m, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
    }

    #[test]
    fn preprocessing_time_is_recorded() {
        let m = generators::uniform_random::<f64>(256, 256, 8, 1);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(engine.preprocessing_time() > Duration::ZERO);
    }

    #[test]
    fn prepare_report_breaks_down_preprocessing_time() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        let report = engine.report();
        // the report's total IS preprocessing_time (same sum)
        assert_eq!(report.total(), engine.preprocessing_time());
        // stage tree: prepare → {plan, permute, tile}
        for path in ["prepare", "prepare/plan", "prepare/permute", "prepare/tile"] {
            assert!(
                report.stage_duration(path).is_some(),
                "missing stage {path}"
            );
        }
        // children sum to (at most) the root, and cover most of it
        let children: Duration = ["prepare/plan", "prepare/permute", "prepare/tile"]
            .iter()
            .map(|p| report.stage_duration(p).unwrap())
            .sum();
        let root = report.stage_duration("prepare").unwrap();
        assert!(children <= root);
        // pipeline counters flowed through: this fixture reorders, so
        // round 1 ran the LSH funnel
        let manifest = report.manifest();
        assert!(manifest.find("prepare/plan/round1/minhash").is_some());
        assert!(manifest.counters.contains_key("lsh.candidates"));
        assert!(manifest.counters.contains_key("aspt.nnz_dense"));
        assert_eq!(
            manifest.meta.get("nnz").map(String::as_str),
            Some(m.nnz().to_string().as_str())
        );
    }

    #[test]
    fn prepare_rejects_corrupt_matrices() {
        // column index out of range, injected via the unchecked path
        let bad = CsrMatrix::from_parts_unchecked(2, 3, vec![0, 1, 2], vec![0, 9], vec![1.0, 2.0]);
        let err = Engine::prepare(&bad, &cfg()).unwrap_err();
        assert!(matches!(err, SparseError::InvalidStructure(_)));
    }

    #[test]
    fn user_telemetry_sees_prepare_and_exec_events() {
        let user = Arc::new(Collector::new());
        let config = EngineConfig::builder()
            .reorder(cfg().reorder)
            .k_hint(8)
            .telemetry(TelemetryHandle::new(user.clone()))
            .build();
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &config).unwrap();
        let x = generators::random_dense::<f64>(m.ncols(), 8, 7);
        engine.spmm(&x).unwrap();
        engine.simulate_spmm(8, &DeviceConfig::p100());

        let manifest = user.manifest();
        assert!(manifest.find("prepare/plan").is_some());
        assert!(manifest.find("exec.spmm").is_some());
        assert!(manifest.find("sim.spmm").is_some());
        assert_eq!(
            manifest.counters.get("exec.nnz_processed"),
            Some(&(m.nnz() as u64))
        );
        assert!(manifest.counters.contains_key("sim.spmm.dram_bytes"));
        assert_eq!(manifest.meta.get("k_hint").map(String::as_str), Some("8"));
        // the engine's own live manifest mirrors the user's view
        let own = engine.manifest();
        assert_eq!(own.counters, manifest.counters);
    }

    #[test]
    fn simulation_reports_are_consistent() {
        let m = generators::shuffled_block_diagonal::<f32>(16, 16, 32, 12, 9);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        let device = DeviceConfig::p100();
        let spmm = engine.simulate_spmm(32, &device);
        let sddmm = engine.simulate_sddmm(32, &device);
        assert_eq!(spmm.flops, 2 * m.nnz() as u64 * 32);
        assert!(sddmm.flops >= 2 * m.nnz() as u64 * 32);
        assert!(spmm.time_s > 0.0 && sddmm.time_s > 0.0);
    }

    #[test]
    fn spmm_into_reuses_buffer_and_checks_shape() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 11);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        let x = generators::random_dense::<f64>(m.ncols(), 8, 2);
        let mut y = DenseMatrix::zeros(m.nrows(), 8);
        engine.spmm_into(&x, &mut y).unwrap();
        assert!(spmm_rowwise_seq(&m, &x).unwrap().max_abs_diff(&y) < 1e-10);
        // reuse: second call overwrites, not accumulates
        engine.spmm_into(&x, &mut y).unwrap();
        assert!(spmm_rowwise_seq(&m, &x).unwrap().max_abs_diff(&y) < 1e-10);
        // wrong shape rejected
        let mut bad = DenseMatrix::zeros(m.nrows() + 1, 8);
        assert!(engine.spmm_into(&x, &mut bad).is_err());
    }

    #[test]
    fn sddmm_into_matches_sddmm() {
        let m = generators::shuffled_block_diagonal::<f64>(32, 8, 24, 8, 13);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        let x = generators::random_dense::<f64>(m.ncols(), 4, 1);
        let y = generators::random_dense::<f64>(m.nrows(), 4, 2);
        let expected = engine.sddmm(&x, &y).unwrap();
        let mut out = vec![0.0f64; m.nnz()];
        engine.sddmm_into(&x, &y, &mut out).unwrap();
        assert_eq!(out, expected);
        let mut short = vec![0.0f64; m.nnz() - 1];
        assert!(engine.sddmm_into(&x, &y, &mut short).is_err());
    }

    #[test]
    fn update_values_preserves_correctness() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 7);
        let mut engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(engine.plan().round1_applied);
        // change every value; the engine must track without re-tiling
        let new_values: Vec<f64> = (0..m.nnz()).map(|i| (i % 17) as f64 - 8.0).collect();
        engine.update_values(&new_values);
        let mut m2 = m.clone();
        m2.values_mut().copy_from_slice(&new_values);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 5);
        let expected = spmm_rowwise_seq(&m2, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
        // SDDMM values scale too
        let y = generators::random_dense::<f64>(m.nrows(), 8, 6);
        let e = sddmm_rowwise_seq(&m2, &x, &y).unwrap();
        let g = engine.sddmm(&x, &y).unwrap();
        assert!(e.iter().zip(&g).all(|(a, b)| (a - b).abs() < 1e-10));
    }

    #[test]
    fn execute_dispatch_matches_named_methods() {
        let m = generators::shuffled_block_diagonal::<f64>(32, 8, 24, 8, 21);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        let x = generators::random_dense::<f64>(m.ncols(), 4, 1);
        let y = generators::random_dense::<f64>(m.nrows(), 4, 2);

        let spmm = engine
            .execute(KernelOp::Spmm { x: &x })
            .unwrap()
            .into_dense()
            .unwrap();
        assert_eq!(spmm, engine.spmm(&x).unwrap());

        let mut buf = DenseMatrix::zeros(m.nrows(), 4);
        assert_eq!(
            engine
                .execute(KernelOp::SpmmInto { x: &x, y: &mut buf })
                .unwrap(),
            Output::Written
        );
        assert_eq!(buf, spmm);

        let sddmm = engine
            .execute(KernelOp::Sddmm { x: &x, y: &y })
            .unwrap()
            .into_values()
            .unwrap();
        assert_eq!(sddmm, engine.sddmm(&x, &y).unwrap());

        let mut vals = vec![0.0f64; m.nnz()];
        engine
            .execute(KernelOp::SddmmInto {
                x: &x,
                y: &y,
                out: &mut vals,
            })
            .unwrap();
        assert_eq!(vals, sddmm);

        // op introspection used by the autotuner routing
        assert_eq!(
            KernelOp::Spmm { x: &x }.op_kind(),
            crate::autotune::Kernel::Spmm
        );
        assert_eq!(
            KernelOp::Sddmm { x: &x, y: &y }.op_kind(),
            crate::autotune::Kernel::Sddmm
        );
        assert_eq!(KernelOp::Spmm { x: &x }.k(), Some(4));
    }

    #[test]
    fn spmv_op_is_bit_identical_to_spmm_k1() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(engine.plan().needs_reordering());
        let x_mat = generators::random_dense::<f64>(m.ncols(), 1, 7);
        let x: Vec<f64> = x_mat.data().to_vec();
        let via_spmm = engine.spmm(&x_mat).unwrap();
        let via_spmv = engine.spmv(&x).unwrap();
        assert_eq!(via_spmm.data(), via_spmv.as_slice());
        // dispatch and wrapper agree
        let via_op = engine
            .execute(KernelOp::Spmv { x: &x })
            .unwrap()
            .into_vector()
            .unwrap();
        assert_eq!(via_op, via_spmv);
        // op introspection
        let op: KernelOp<'_, f64> = KernelOp::Spmv { x: &x };
        assert_eq!(op.op_kind(), crate::autotune::Kernel::Spmv);
        assert_eq!(op.k(), Some(1));
        // shape mismatch is a structured error
        assert!(engine.spmv(&x[1..]).is_err());
    }

    #[test]
    fn spgemm_op_matches_reference_gustavson() {
        use crate::spgemm::spgemm_gustavson_seq;
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 5);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(engine.plan().needs_reordering());
        let b = generators::uniform_random::<f64>(m.ncols(), 40, 6, 17);
        let expected = spgemm_gustavson_seq(&m, &b).unwrap();
        let got = engine.spgemm(&b).unwrap();
        assert!(expected.same_structure(&got), "structure must match");
        assert_eq!(expected.values(), got.values(), "values must be bit-equal");
        // dispatch and wrapper agree
        let via_op = engine
            .execute(KernelOp::Spgemm { b: &b })
            .unwrap()
            .into_sparse()
            .unwrap();
        assert!(got.same_structure(&via_op));
        assert_eq!(got.values(), via_op.values());
        // op introspection: SpGEMM has no dense operand
        let op = KernelOp::Spgemm { b: &b };
        assert_eq!(op.op_kind(), crate::autotune::Kernel::Spgemm);
        assert_eq!(op.k(), None);
        // shape mismatch is a structured error
        let bad = generators::uniform_random::<f64>(m.ncols() + 1, 8, 4, 3);
        assert!(engine.spgemm(&bad).is_err());
    }

    #[test]
    fn output_accessors_return_none_on_shape_mismatch() {
        let m = generators::shuffled_block_diagonal::<f64>(32, 8, 24, 8, 21);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        let x = generators::random_dense::<f64>(m.ncols(), 4, 1);
        let out = engine.execute(KernelOp::Spmm { x: &x }).unwrap();
        assert!(out.as_dense().is_some());
        assert!(out.as_values().is_none());
        assert!(out.as_vector().is_none());
        assert!(out.as_sparse().is_none());
        assert!(out.clone().into_vector().is_none());
        assert!(out.clone().into_sparse().is_none());
        assert!(out.clone().into_values().is_none());
        assert!(out.into_dense().is_some());
    }

    #[test]
    fn kblocked_op_is_bit_identical_to_spmm_op() {
        // the reordered path: unpermutation must compose with blocking
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(engine.plan().needs_reordering());
        let x = generators::random_dense::<f64>(m.ncols(), 24, 7);
        let plain = engine.spmm(&x).unwrap();
        for kb in [1, 5, 8, 24, 64] {
            let blocked = engine
                .execute(KernelOp::SpmmKBlocked { x: &x, k_block: kb })
                .unwrap()
                .into_dense()
                .unwrap();
            assert_eq!(plain.data(), blocked.data(), "k_block={kb}");
        }
        // op introspection routes the batched op like any SpMM
        let op = KernelOp::SpmmKBlocked { x: &x, k_block: 8 };
        assert_eq!(op.op_kind(), crate::autotune::Kernel::Spmm);
        assert_eq!(op.k(), Some(24));
        // shape mismatch is a structured error
        let bad = generators::random_dense::<f64>(m.ncols() + 1, 4, 1);
        assert!(engine
            .execute(KernelOp::SpmmKBlocked {
                x: &bad,
                k_block: 8
            })
            .is_err());
    }

    #[test]
    fn with_updated_values_shares_plan_and_leaves_original_intact() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 7);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        let x = generators::random_dense::<f64>(m.ncols(), 8, 5);
        let before = engine.spmm(&x).unwrap();

        let new_values: Vec<f64> = (0..m.nnz()).map(|i| (i % 13) as f64 - 6.0).collect();
        let refreshed = engine.with_updated_values(&new_values).unwrap();

        // the refreshed engine computes with the new values...
        let mut m2 = m.clone();
        m2.values_mut().copy_from_slice(&new_values);
        let expected = spmm_rowwise_seq(&m2, &x).unwrap();
        assert!(expected.max_abs_diff(&refreshed.spmm(&x).unwrap()) < 1e-10);
        // ...the original is untouched (copy-on-write, not aliasing)...
        assert!(before.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
        // ...and the plan and nnz map are shared, not re-prepared
        assert!(Arc::ptr_eq(&engine.plan, &refreshed.plan));
        assert!(Arc::ptr_eq(&engine.nnz_map, &refreshed.nnz_map));

        // wrong length is a structured error, not a panic
        assert!(matches!(
            engine.with_updated_values(&[1.0]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_parts_rebuilds_a_bit_identical_engine() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(engine.plan().needs_reordering());
        let rebuilt = Engine::from_parts(
            engine.plan().clone(),
            engine.aspt().clone(),
            engine.reordered().clone(),
            engine.nnz_map().to_vec(),
            engine.k_hint(),
            &TelemetryHandle::noop(),
        )
        .unwrap();
        assert_eq!(rebuilt.preprocessing_time(), Duration::ZERO);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 7);
        let y = generators::random_dense::<f64>(m.nrows(), 8, 8);
        assert_eq!(
            engine.spmm(&x).unwrap().data(),
            rebuilt.spmm(&x).unwrap().data()
        );
        assert_eq!(
            engine.sddmm(&x, &y).unwrap(),
            rebuilt.sddmm(&x, &y).unwrap()
        );
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        let noop = TelemetryHandle::noop();

        // nnz map not a bijection
        let mut map = engine.nnz_map().to_vec();
        map[0] = map[1];
        assert!(Engine::from_parts(
            engine.plan().clone(),
            engine.aspt().clone(),
            engine.reordered().clone(),
            map,
            None,
            &noop,
        )
        .is_err());

        // tiling from a different matrix
        let other = generators::uniform_random::<f64>(m.nrows(), m.ncols(), 8, 5);
        let other_engine = Engine::prepare(&other, &cfg()).unwrap();
        assert!(Engine::from_parts(
            engine.plan().clone(),
            other_engine.aspt().clone(),
            engine.reordered().clone(),
            engine.nnz_map().to_vec(),
            None,
            &noop,
        )
        .is_err());

        // permutation length mismatch
        let mut plan = engine.plan().clone();
        plan.row_perm = Permutation::identity(3);
        assert!(Engine::from_parts(
            plan,
            engine.aspt().clone(),
            engine.reordered().clone(),
            engine.nnz_map().to_vec(),
            None,
            &noop,
        )
        .is_err());
    }

    #[test]
    fn source_matrix_inverts_the_reordering() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(engine.plan().round1_applied);
        assert_eq!(engine.source_matrix(), m);
        // identity path
        let id = generators::pinned_block_diagonal::<f64>(8, 16, 12);
        let engine = Engine::prepare(&id, &cfg()).unwrap();
        assert!(!engine.plan().needs_reordering());
        assert_eq!(engine.source_matrix(), id);
    }

    #[test]
    fn apply_delta_matches_fresh_prepare_numerically() {
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 3);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        let added = [(3usize, 40usize, 2.5f64), (17, 1, -1.0), (63, 0, 4.0)];
        let removed = [(3usize, m.row_cols(3)[0] as usize)];
        let patched = m.apply_structural_delta(&added, &removed).unwrap();

        let inc = engine.apply_delta(&added, &removed).unwrap();
        assert_eq!(inc.source_matrix(), patched);

        // results agree with a reference on the patched structure
        let x = generators::random_dense::<f64>(m.ncols(), 8, 7);
        let expected = spmm_rowwise_seq(&patched, &x).unwrap();
        assert!(expected.max_abs_diff(&inc.spmm(&x).unwrap()) < 1e-10);
        let fresh = Engine::prepare(&patched, &cfg()).unwrap();
        assert!(fresh.spmm(&x).unwrap().max_abs_diff(&inc.spmm(&x).unwrap()) < 1e-10);
    }

    #[test]
    fn apply_delta_chains_and_handles_row_lifecycle() {
        let m = generators::shuffled_block_diagonal::<f64>(32, 8, 24, 8, 5);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        // empty row 2 entirely, then repopulate it in a second delta
        let row2: Vec<(usize, usize)> = m.row_cols(2).iter().map(|&c| (2, c as usize)).collect();
        let e1 = engine.apply_delta(&[], &row2).unwrap();
        assert_eq!(e1.source_matrix().row_nnz(2), 0);
        let e2 = e1.apply_delta(&[(2, 5, 9.0), (2, 11, -3.0)], &[]).unwrap();
        let final_m = m
            .apply_structural_delta(&[], &row2)
            .unwrap()
            .apply_structural_delta(&[(2, 5, 9.0), (2, 11, -3.0)], &[])
            .unwrap();
        assert_eq!(e2.source_matrix(), final_m);
        let x = generators::random_dense::<f64>(m.ncols(), 4, 2);
        let expected = spmm_rowwise_seq(&final_m, &x).unwrap();
        assert!(expected.max_abs_diff(&e2.spmm(&x).unwrap()) < 1e-10);
    }

    #[test]
    fn apply_delta_rejects_malformed_deltas_and_leaves_self_usable() {
        let m = generators::shuffled_block_diagonal::<f64>(32, 8, 24, 8, 7);
        let engine = Engine::prepare(&m, &cfg()).unwrap();
        assert!(matches!(
            engine.apply_delta(&[(999, 0, 1.0)], &[]),
            Err(SparseError::DeltaOutOfBounds { .. })
        ));
        let existing = (0usize, m.row_cols(0)[0] as usize);
        assert!(matches!(
            engine.apply_delta(&[], &[existing, existing]),
            Err(SparseError::DeltaDuplicate { .. })
        ));
        let absent = (0..m.ncols() as u32)
            .find(|c| m.row_cols(1).binary_search(c).is_err())
            .unwrap() as usize;
        assert!(matches!(
            engine.apply_delta(&[], &[(1, absent)]),
            Err(SparseError::DeltaMissingEdge { .. })
        ));
        // the failed delta left the engine serving correct answers
        let x = generators::random_dense::<f64>(m.ncols(), 4, 3);
        let expected = spmm_rowwise_seq(&m, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
    }

    #[test]
    fn delta_drift_threshold_zero_forces_recluster_path() {
        // drift 0.0 re-clusters every touched panel; results must stay
        // exact either way
        let m = generators::shuffled_block_diagonal::<f64>(64, 16, 48, 16, 9);
        let config = EngineConfig::builder()
            .reorder(cfg().reorder)
            .delta_drift_threshold(0.0)
            .build();
        let engine = Engine::prepare(&m, &config).unwrap();
        let added = [(5usize, 2usize, 1.0f64), (40, 30, 2.0)];
        let inc = engine.apply_delta(&added, &[]).unwrap();
        let patched = m.apply_structural_delta(&added, &[]).unwrap();
        assert_eq!(inc.source_matrix(), patched);
        let x = generators::random_dense::<f64>(m.ncols(), 8, 11);
        let expected = spmm_rowwise_seq(&patched, &x).unwrap();
        assert!(expected.max_abs_diff(&inc.spmm(&x).unwrap()) < 1e-10);
        // sddmm + spgemm stay exact through the delta too
        let y = generators::random_dense::<f64>(m.nrows(), 8, 12);
        let e = sddmm_rowwise_seq(&patched, &x, &y).unwrap();
        let g = inc.sddmm(&x, &y).unwrap();
        assert!(e.iter().zip(&g).all(|(a, b)| (a - b).abs() < 1e-10));
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        engine_is_send_sync::<f64>();
        let m = generators::shuffled_block_diagonal::<f64>(32, 8, 24, 8, 3);
        let engine = Arc::new(Engine::prepare(&m, &cfg()).unwrap());
        let x = generators::random_dense::<f64>(m.ncols(), 4, 4);
        let expected = engine.spmm(&x).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = Arc::clone(&engine);
                let x = &x;
                let expected = &expected;
                scope.spawn(move || {
                    let got = engine.spmm(x).unwrap();
                    assert!(expected.max_abs_diff(&got) < 1e-12);
                });
            }
        });
    }

    #[test]
    fn forced_reordering_still_correct() {
        let m = generators::block_diagonal::<f64>(8, 16, 24, 10, 11);
        let config = EngineConfig::builder()
            .reorder(
                ReorderConfig::builder()
                    .policy(ReorderPolicy::always())
                    .aspt(AsptConfig {
                        panel_height: 8,
                        min_col_nnz: 2,
                        tile_width: 16,
                    })
                    .build(),
            )
            .build();
        let engine = Engine::prepare(&m, &config).unwrap();
        let x = generators::random_dense::<f64>(m.ncols(), 8, 3);
        let expected = spmm_rowwise_seq(&m, &x).unwrap();
        assert!(expected.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-10);
        let y = generators::random_dense::<f64>(m.nrows(), 8, 4);
        let e2 = sddmm_rowwise_seq(&m, &x, &y).unwrap();
        let g2 = engine.sddmm(&x, &y).unwrap();
        assert!(e2.iter().zip(&g2).all(|(a, b)| (a - b).abs() < 1e-10));
    }
}
