//! SpMV kernels: `y = S · x` — the dedicated `k = 1` fast path.
//!
//! SpMV is SpMM with a single dense column, but the general kernels pay
//! for that generality: a row-major `DenseMatrix` operand, per-row slice
//! arithmetic and k-blocking bookkeeping that is pure overhead at
//! `k = 1`. These kernels take the dense operand as a flat slice and
//! accumulate into scalars, while following the *exact* accumulation
//! order of their SpMM counterparts ([`crate::spmm::spmm_rowwise_seq`],
//! [`crate::spmm::spmm_aspt`]) — so every variant here is bit-identical
//! to the matching SpMM kernel applied to an `n × 1` operand.

use rayon::prelude::*;
use spmm_aspt::AsptMatrix;
use spmm_sparse::{CsrMatrix, Scalar, SparseError};

fn check_dims<T: Scalar>(ncols: usize, x: &[T]) -> Result<(), SparseError> {
    if ncols != x.len() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("S.ncols ({ncols}) == x.len"),
            got: format!("{}", x.len()),
        });
    }
    Ok(())
}

/// Sequential row-wise SpMV — the reference every other variant (and
/// the serving layer's exactness checks) compare against. Accumulation
/// per output element mirrors [`crate::spmm::spmm_rowwise_seq`] with
/// `k = 1`: one `mul_add` per nonzero, in row traversal order.
pub fn spmv_rowwise_seq<T: Scalar>(s: &CsrMatrix<T>, x: &[T]) -> Result<Vec<T>, SparseError> {
    check_dims(s.ncols(), x)?;
    let mut y = vec![T::ZERO; s.nrows()];
    for (i, out) in y.iter_mut().enumerate() {
        let (cols, vals) = s.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            *out = v.mul_add(x[c as usize], *out);
        }
    }
    Ok(y)
}

/// Row-parallel SpMV: each rayon task owns one output element,
/// mirroring the GPU's warp-per-row mapping. Bit-identical to
/// [`spmv_rowwise_seq`] (rows are independent).
pub fn spmv_rowwise_par<T: Scalar>(s: &CsrMatrix<T>, x: &[T]) -> Result<Vec<T>, SparseError> {
    check_dims(s.ncols(), x)?;
    let mut y = vec![T::ZERO; s.nrows()];
    y.par_iter_mut().enumerate().for_each(|(i, out)| {
        let (cols, vals) = s.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            *out = v.mul_add(x[c as usize], *out);
        }
    });
    Ok(y)
}

/// ASpT-structured SpMV: dense tiles accumulate per panel (the staged-X
/// kernel with a one-element stage), the sparse remainder accumulates
/// row-wise into the same output. The per-element accumulation order —
/// tiles in panel order, then the remainder row — is exactly that of
/// [`crate::spmm::spmm_aspt`], so the result is bit-identical to the
/// SpMM kernel on an `n × 1` operand.
pub fn spmv_aspt<T: Scalar>(aspt: &AsptMatrix<T>, x: &[T]) -> Result<Vec<T>, SparseError> {
    check_dims(aspt.ncols(), x)?;
    let mut y = vec![T::ZERO; aspt.nrows()];

    // slice the output into per-panel chunks (panels cover consecutive
    // disjoint row ranges)
    let mut chunks: Vec<&mut [T]> = Vec::with_capacity(aspt.panels().len());
    let mut rest: &mut [T] = &mut y;
    for panel in aspt.panels() {
        let (head, tail) = rest.split_at_mut(panel.row_end - panel.row_start);
        chunks.push(head);
        rest = tail;
    }

    let remainder = aspt.remainder();
    aspt.panels()
        .par_iter()
        .zip(chunks)
        .for_each(|(panel, y_chunk)| {
            let panel_rows = panel.row_end - panel.row_start;
            // dense tiles: conceptually the staged-x kernel
            for tile in &panel.tiles {
                for (rel, out) in y_chunk.iter_mut().enumerate().take(panel_rows) {
                    for e in tile.rowptr[rel]..tile.rowptr[rel + 1] {
                        *out = tile.values[e].mul_add(x[tile.colidx[e] as usize], *out);
                    }
                }
            }
            // sparse remainder rows of this panel
            for r in panel.rows() {
                let rel = r - panel.row_start;
                let out = &mut y_chunk[rel];
                let (cols, vals) = remainder.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    *out = v.mul_add(x[c as usize], *out);
                }
            }
        });
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::{spmm_rowwise_par, spmm_rowwise_seq};
    use spmm_aspt::AsptConfig;
    use spmm_data::generators;
    use spmm_sparse::DenseMatrix;

    fn column<T: Scalar>(n: usize, seed: u64) -> (Vec<T>, DenseMatrix<T>) {
        let x = generators::random_dense::<T>(n, 1, seed);
        (x.data().to_vec(), x)
    }

    #[test]
    fn spmv_is_bit_identical_to_spmm_k1() {
        let s = generators::uniform_random::<f64>(96, 80, 6, 3);
        let (x, x_mat) = column::<f64>(s.ncols(), 7);
        let seq = spmv_rowwise_seq(&s, &x).unwrap();
        assert_eq!(seq, spmm_rowwise_seq(&s, &x_mat).unwrap().data());
        assert_eq!(seq, spmv_rowwise_par(&s, &x).unwrap());
        assert_eq!(seq, spmm_rowwise_par(&s, &x_mat).unwrap().data());
    }

    #[test]
    fn aspt_spmv_is_bit_identical_to_aspt_spmm_k1() {
        for (s, seed) in [
            (generators::uniform_random::<f32>(96, 80, 6, 3), 5u64),
            (generators::block_diagonal::<f32>(6, 16, 24, 10, 5), 9),
            (generators::power_law::<f32>(128, 96, 1000, 0.8, 11), 13),
        ] {
            let (x, x_mat) = column::<f32>(s.ncols(), seed);
            for cfg in [AsptConfig::paper_figure(), AsptConfig::default()] {
                let aspt = AsptMatrix::build(&s, &cfg);
                let tiled = spmv_aspt(&aspt, &x).unwrap();
                let spmm = crate::spmm::spmm_aspt(&aspt, &x_mat).unwrap();
                assert_eq!(tiled, spmm.data(), "aspt spmv deviates with {cfg:?}");
            }
        }
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        let s = CsrMatrix::from_parts(
            5,
            4,
            vec![0, 1, 1, 2, 2, 3],
            vec![2, 0, 3],
            vec![1.5f64, -2.0, 0.5],
        )
        .unwrap();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = spmv_rowwise_seq(&s, &x).unwrap();
        assert_eq!(y, vec![4.5, 0.0, -2.0, 0.0, 2.0]);
        let empty = CsrMatrix::<f64>::from_parts(3, 2, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        assert_eq!(spmv_rowwise_seq(&empty, &[1.0, 2.0]).unwrap(), vec![0.0; 3]);
        let aspt = AsptMatrix::build(&empty, &AsptConfig::default());
        assert_eq!(spmv_aspt(&aspt, &[1.0, 2.0]).unwrap(), vec![0.0; 3]);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let s = CsrMatrix::<f64>::identity(4);
        assert!(spmv_rowwise_seq(&s, &[1.0; 5]).is_err());
        assert!(spmv_rowwise_par(&s, &[1.0; 3]).is_err());
        let aspt = AsptMatrix::build(&s, &AsptConfig::default());
        assert!(spmv_aspt(&aspt, &[1.0; 5]).is_err());
    }
}
