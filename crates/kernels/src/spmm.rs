//! SpMM kernels: `Y = S · X` (paper Alg 1).

use rayon::prelude::*;
use spmm_aspt::AsptMatrix;
use spmm_sparse::{CsrMatrix, DenseMatrix, Scalar, SparseError};

pub(crate) fn check_dims<T: Scalar>(
    s: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
) -> Result<(usize, usize), SparseError> {
    if s.ncols() != x.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("S.ncols ({}) == X.nrows", s.ncols()),
            got: format!("{}", x.nrows()),
        });
    }
    Ok((s.nrows(), x.ncols()))
}

/// `y_row += v * x_row` over a full row of width `k`.
#[inline]
pub(crate) fn axpy<T: Scalar>(y_row: &mut [T], v: T, x_row: &[T]) {
    debug_assert_eq!(y_row.len(), x_row.len());
    for (y, &x) in y_row.iter_mut().zip(x_row) {
        *y = v.mul_add(x, *y);
    }
}

/// Slices `data` (row-major, `k` columns) into per-panel chunks.
/// Panels cover consecutive disjoint row ranges, so the chunks
/// partition the output and panel parallelism over them is safe.
pub(crate) fn panel_chunks<'a, T: Scalar>(
    aspt: &AsptMatrix<T>,
    data: &'a mut [T],
    k: usize,
) -> Vec<&'a mut [T]> {
    let mut chunks: Vec<&mut [T]> = Vec::with_capacity(aspt.panels().len());
    let mut rest = data;
    for panel in aspt.panels() {
        let (head, tail) = rest.split_at_mut((panel.row_end - panel.row_start) * k);
        chunks.push(head);
        rest = tail;
    }
    chunks
}

/// Sequential row-wise SpMM — the Alg 1 reference every other kernel is
/// checked against.
pub fn spmm_rowwise_seq<T: Scalar>(
    s: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
) -> Result<DenseMatrix<T>, SparseError> {
    let (m, k) = check_dims(s, x)?;
    let mut y = DenseMatrix::zeros(m, k);
    for i in 0..m {
        let (cols, vals) = s.row(i);
        let y_row = y.row_mut(i);
        for (&c, &v) in cols.iter().zip(vals) {
            axpy(y_row, v, x.row(c as usize));
        }
    }
    Ok(y)
}

/// Row-parallel SpMM: each rayon task owns one output row, mirroring
/// the GPU's warp-per-row mapping.
pub fn spmm_rowwise_par<T: Scalar>(
    s: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
) -> Result<DenseMatrix<T>, SparseError> {
    let (m, k) = check_dims(s, x)?;
    let mut y = DenseMatrix::zeros(m, k);
    y.data_mut()
        .par_chunks_mut(k)
        .enumerate()
        .for_each(|(i, y_row)| {
            let (cols, vals) = s.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                axpy(y_row, v, x.row(c as usize));
            }
        });
    Ok(y)
}

/// Column-blocked row-parallel SpMM for fused multi-RHS operands:
/// tiles `X`/`Y` over `k_block`-wide column blocks so each sparse
/// traversal pass touches only an `X` working set of
/// `X.nrows × k_block` elements. The block loop runs *inside* each
/// row's task, so rayon forks and joins exactly once regardless of how
/// many passes `k / k_block` implies. Per output element the
/// accumulation order is exactly that of [`spmm_rowwise_seq`] — columns
/// never mix — so the result is bit-identical to the unblocked kernels.
///
/// `k_block = 0` is rejected at the configuration boundaries (the
/// serving `BatchConfig` builder and the CLI parse); here it is a
/// debug assertion, clamped to 1 in release builds.
pub fn spmm_rowwise_kblocked<T: Scalar>(
    s: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    k_block: usize,
) -> Result<DenseMatrix<T>, SparseError> {
    debug_assert!(
        k_block > 0,
        "k_block = 0 (zero block width is rejected at the config/CLI boundary)"
    );
    let (m, k) = check_dims(s, x)?;
    let kb = k_block.max(1);
    let mut y = DenseMatrix::zeros(m, k);
    if k == 0 {
        return Ok(y);
    }
    y.data_mut()
        .par_chunks_mut(k)
        .enumerate()
        .for_each(|(i, y_row)| {
            let (cols, vals) = s.row(i);
            let mut c0 = 0;
            while c0 < k {
                let c1 = (c0 + kb).min(k);
                for (&c, &v) in cols.iter().zip(vals) {
                    axpy(&mut y_row[c0..c1], v, &x.row(c as usize)[c0..c1]);
                }
                c0 = c1;
            }
        });
    Ok(y)
}

/// ASpT-structured SpMM: dense tiles accumulate per panel (mirroring
/// the shared-memory kernel), the remainder accumulates row-wise into
/// the same output. Panels own disjoint output row ranges, so panel
/// parallelism is safe.
pub fn spmm_aspt<T: Scalar>(
    aspt: &AsptMatrix<T>,
    x: &DenseMatrix<T>,
) -> Result<DenseMatrix<T>, SparseError> {
    if aspt.ncols() != x.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("S.ncols ({}) == X.nrows", aspt.ncols()),
            got: format!("{}", x.nrows()),
        });
    }
    let k = x.ncols();
    let mut y = DenseMatrix::zeros(aspt.nrows(), k);
    let chunks = panel_chunks(aspt, y.data_mut(), k);
    let remainder = aspt.remainder();
    aspt.panels()
        .par_iter()
        .zip(chunks)
        .for_each(|(panel, y_chunk)| {
            let panel_rows = panel.row_end - panel.row_start;
            // dense tiles: conceptually the staged-X kernel
            for tile in &panel.tiles {
                for rel in 0..panel_rows {
                    let y_row = &mut y_chunk[rel * k..(rel + 1) * k];
                    for e in tile.rowptr[rel]..tile.rowptr[rel + 1] {
                        axpy(y_row, tile.values[e], x.row(tile.colidx[e] as usize));
                    }
                }
            }
            // sparse remainder rows of this panel
            for r in panel.rows() {
                let rel = r - panel.row_start;
                let y_row = &mut y_chunk[rel * k..(rel + 1) * k];
                let (cols, vals) = remainder.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    axpy(y_row, v, x.row(c as usize));
                }
            }
        });
    Ok(y)
}

/// Column-blocked ASpT SpMM — the batched multi-RHS kernel. Processes
/// the fused operand one `k_block`-wide column block at a time; each
/// pass runs the same dense-tile + remainder traversal as [`spmm_aspt()`]
/// restricted to that block's columns. The output split and the rayon
/// fork/join happen once: the block loop runs inside each panel's task,
/// so pass count never multiplies scheduling overhead. The per-element
/// accumulation order matches `spmm_aspt` exactly (blocking only
/// partitions columns, never reorders nonzeros), so the output is
/// bit-identical while the dense working set per pass stays bounded.
///
/// `k_block = 0` is rejected at the configuration boundaries (the
/// serving `BatchConfig` builder and the CLI parse); here it is a
/// debug assertion, clamped to 1 in release builds.
pub fn spmm_aspt_kblocked<T: Scalar>(
    aspt: &AsptMatrix<T>,
    x: &DenseMatrix<T>,
    k_block: usize,
) -> Result<DenseMatrix<T>, SparseError> {
    debug_assert!(
        k_block > 0,
        "k_block = 0 (zero block width is rejected at the config/CLI boundary)"
    );
    if aspt.ncols() != x.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("S.ncols ({}) == X.nrows", aspt.ncols()),
            got: format!("{}", x.nrows()),
        });
    }
    let k = x.ncols();
    let kb = k_block.max(1);
    let mut y = DenseMatrix::zeros(aspt.nrows(), k);
    let chunks = panel_chunks(aspt, y.data_mut(), k);
    let remainder = aspt.remainder();

    aspt.panels()
        .par_iter()
        .zip(chunks)
        .for_each(|(panel, y_chunk)| {
            let panel_rows = panel.row_end - panel.row_start;
            let mut c0 = 0;
            while c0 < k {
                let c1 = (c0 + kb).min(k);
                for tile in &panel.tiles {
                    for rel in 0..panel_rows {
                        let y_row = &mut y_chunk[rel * k + c0..rel * k + c1];
                        for e in tile.rowptr[rel]..tile.rowptr[rel + 1] {
                            axpy(
                                y_row,
                                tile.values[e],
                                &x.row(tile.colidx[e] as usize)[c0..c1],
                            );
                        }
                    }
                }
                for r in panel.rows() {
                    let rel = r - panel.row_start;
                    let y_row = &mut y_chunk[rel * k + c0..rel * k + c1];
                    let (cols, vals) = remainder.row(r);
                    for (&c, &v) in cols.iter().zip(vals) {
                        axpy(y_row, v, &x.row(c as usize)[c0..c1]);
                    }
                }
                c0 = c1;
            }
        });
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_aspt::AsptConfig;
    use spmm_data::generators;

    fn tol<T: Scalar>() -> f64 {
        if T::BYTES == 4 {
            1e-3
        } else {
            1e-10
        }
    }

    fn check_all_variants<T: Scalar>(s: &CsrMatrix<T>, k: usize, seed: u64) {
        let x = generators::random_dense::<T>(s.ncols(), k, seed);
        let reference = spmm_rowwise_seq(s, &x).unwrap();
        assert!(reference.all_finite());

        let par = spmm_rowwise_par(s, &x).unwrap();
        assert!(
            reference.max_abs_diff(&par) <= tol::<T>(),
            "parallel deviates"
        );

        for cfg in [
            AsptConfig::paper_figure(),
            AsptConfig {
                panel_height: 8,
                min_col_nnz: 2,
                tile_width: 4,
            },
            AsptConfig::default(),
        ] {
            let aspt = AsptMatrix::build(s, &cfg);
            let tiled = spmm_aspt(&aspt, &x).unwrap();
            assert!(
                reference.max_abs_diff(&tiled) <= tol::<T>(),
                "aspt deviates with {cfg:?}"
            );
        }
    }

    #[test]
    fn identity_times_x_is_x() {
        let s = CsrMatrix::<f64>::identity(10);
        let x = generators::random_dense::<f64>(10, 8, 1);
        let y = spmm_rowwise_seq(&s, &x).unwrap();
        assert_eq!(y.max_abs_diff(&x), 0.0);
    }

    #[test]
    fn known_small_product() {
        // S = [[2,0],[1,3]], X = [[1,10],[100,1000]]
        let s =
            CsrMatrix::from_parts(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![2.0, 1.0, 3.0]).unwrap();
        let x = DenseMatrix::from_vec(2, 2, vec![1.0, 10.0, 100.0, 1000.0]);
        let y = spmm_rowwise_seq(&s, &x).unwrap();
        assert_eq!(y.data(), &[2.0, 20.0, 301.0, 3010.0]);
    }

    #[test]
    fn all_variants_agree_on_scattered_f64() {
        let s = generators::uniform_random::<f64>(96, 80, 6, 3);
        check_all_variants(&s, 16, 7);
    }

    #[test]
    fn all_variants_agree_on_clustered_f32() {
        let s = generators::block_diagonal::<f32>(6, 16, 24, 10, 5);
        check_all_variants(&s, 32, 9);
    }

    #[test]
    fn all_variants_agree_on_powerlaw_f64() {
        let s = generators::power_law::<f64>(128, 96, 1000, 0.8, 11);
        check_all_variants(&s, 8, 13);
    }

    #[test]
    fn all_variants_agree_with_empty_rows() {
        // diagonal-ish matrix with gaps
        let s = CsrMatrix::from_parts(
            5,
            4,
            vec![0, 1, 1, 2, 2, 3],
            vec![2, 0, 3],
            vec![1.5f64, -2.0, 0.5],
        )
        .unwrap();
        check_all_variants(&s, 4, 15);
    }

    #[test]
    fn empty_matrix_gives_zero_output() {
        let s = CsrMatrix::<f64>::from_parts(3, 2, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        let x = generators::random_dense::<f64>(2, 4, 1);
        let y = spmm_rowwise_seq(&s, &x).unwrap();
        assert_eq!(y.frobenius_norm(), 0.0);
        let aspt = AsptMatrix::build(&s, &AsptConfig::default());
        assert_eq!(spmm_aspt(&aspt, &x).unwrap().frobenius_norm(), 0.0);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let s = CsrMatrix::<f64>::identity(4);
        let x = generators::random_dense::<f64>(5, 4, 1);
        assert!(spmm_rowwise_seq(&s, &x).is_err());
        assert!(spmm_rowwise_par(&s, &x).is_err());
        let aspt = AsptMatrix::build(&s, &AsptConfig::default());
        assert!(spmm_aspt(&aspt, &x).is_err());
    }

    #[test]
    fn kblocked_rowwise_is_bit_identical_for_any_block() {
        let s = generators::power_law::<f64>(64, 48, 400, 0.9, 3);
        let x = generators::random_dense::<f64>(48, 37, 5);
        let reference = spmm_rowwise_seq(&s, &x).unwrap();
        for kb in [1, 2, 7, 16, 37, 64] {
            let blocked = spmm_rowwise_kblocked(&s, &x, kb).unwrap();
            assert_eq!(
                reference.data(),
                blocked.data(),
                "k_block={kb} must be bit-identical"
            );
        }
    }

    #[test]
    fn kblocked_aspt_is_bit_identical_for_any_block() {
        let s = generators::block_diagonal::<f32>(5, 12, 20, 8, 17);
        let x = generators::random_dense::<f32>(s.ncols(), 33, 19);
        for cfg in [AsptConfig::paper_figure(), AsptConfig::default()] {
            let aspt = AsptMatrix::build(&s, &cfg);
            let reference = spmm_aspt(&aspt, &x).unwrap();
            for kb in [1, 3, 8, 32, 33, 100] {
                let blocked = spmm_aspt_kblocked(&aspt, &x, kb).unwrap();
                assert_eq!(
                    reference.data(),
                    blocked.data(),
                    "k_block={kb} must be bit-identical with {cfg:?}"
                );
            }
        }
    }

    #[test]
    fn kblocked_handles_degenerate_shapes() {
        // k_block == 1 degenerates to column-at-a-time; k == 0 produces
        // an empty output
        let s = generators::banded::<f64>(10, 2, 3, 1);
        let x = generators::random_dense::<f64>(10, 5, 2);
        let reference = spmm_rowwise_seq(&s, &x).unwrap();
        assert_eq!(
            reference.data(),
            spmm_rowwise_kblocked(&s, &x, 1).unwrap().data()
        );
        let empty_x = DenseMatrix::<f64>::zeros(10, 0);
        let y = spmm_rowwise_kblocked(&s, &empty_x, 8).unwrap();
        assert_eq!((y.nrows(), y.ncols()), (10, 0));
        let aspt = AsptMatrix::build(&s, &AsptConfig::default());
        let y = spmm_aspt_kblocked(&aspt, &empty_x, 8).unwrap();
        assert_eq!((y.nrows(), y.ncols()), (10, 0));
        assert!(spmm_aspt_kblocked(&aspt, &generators::random_dense::<f64>(4, 3, 1), 2).is_err());
        assert!(spmm_rowwise_kblocked(&s, &generators::random_dense::<f64>(4, 3, 1), 2).is_err());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "k_block = 0")]
    fn zero_k_block_is_a_debug_assertion() {
        let s = generators::banded::<f64>(10, 2, 3, 1);
        let x = generators::random_dense::<f64>(10, 5, 2);
        let _ = spmm_rowwise_kblocked(&s, &x, 0);
    }

    /// Regression for the fused single-pass restructure: the k-blocked
    /// kernels (which used to fork/join per column block) stay
    /// bit-identical to their unblocked references on every Quick
    /// corpus class.
    #[test]
    fn kblocked_fused_pass_is_bit_identical_on_quick_corpus() {
        use spmm_data::corpus::{Corpus, CorpusProfile};
        let corpus = Corpus::<f32>::generate(CorpusProfile::Quick, 23);
        for cm in corpus.iter() {
            let s = &cm.matrix;
            let x = generators::random_dense::<f32>(s.ncols(), 21, 29);
            let seq = spmm_rowwise_seq(s, &x).unwrap();
            let aspt = AsptMatrix::build(s, &AsptConfig::default());
            let tiled = spmm_aspt(&aspt, &x).unwrap();
            for kb in [1, 8, 21, 64] {
                assert_eq!(
                    seq.data(),
                    spmm_rowwise_kblocked(s, &x, kb).unwrap().data(),
                    "rowwise k_block={kb} deviates on {}",
                    cm.name
                );
                assert_eq!(
                    tiled.data(),
                    spmm_aspt_kblocked(&aspt, &x, kb).unwrap().data(),
                    "aspt k_block={kb} deviates on {}",
                    cm.name
                );
            }
        }
    }

    #[test]
    fn k_one_degenerates_to_spmv() {
        let s = generators::banded::<f64>(40, 3, 4, 21);
        let x = generators::random_dense::<f64>(40, 1, 2);
        let y = spmm_rowwise_seq(&s, &x).unwrap();
        // manual SpMV
        for i in 0..40 {
            let (cols, vals) = s.row(i);
            let expect: f64 = cols
                .iter()
                .zip(vals)
                .map(|(&c, &v)| v * x.get(c as usize, 0))
                .sum();
            assert!((y.get(i, 0) - expect).abs() < 1e-12);
        }
    }
}
