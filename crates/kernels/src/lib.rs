//! Numerically exact CPU kernels and the end-to-end execution engine.
//!
//! The GPU is simulated ([`spmm_gpu_sim`]) for *performance*; this crate
//! supplies the *numerics* with the same execution structure, proving
//! every transformation (row reordering, tiling, remainder ordering)
//! preserves results:
//!
//! * [`spmm`] — Alg 1 row-wise SpMM (sequential reference + rayon
//!   row-parallel) and the ASpT-structured kernel (dense tiles
//!   accumulated panel-parallel + remainder).
//! * [`micro`] — monomorphized `[T; KB]` register-accumulator
//!   microkernels for the k-blocked hot path (KB ∈ {8, 16, 32}),
//!   selected at plan time, bit-identical to the generic kernels.
//! * [`sddmm`] — Alg 2 SDDMM, same three variants.
//! * [`spmv`] — the dedicated `k = 1` path: flat-slice operand, scalar
//!   accumulators, bit-identical to SpMM on an `n × 1` operand.
//! * [`spgemm`] — Gustavson sparse×sparse, including the cluster-wise
//!   variant that reuses one dense accumulator per ASpT panel.
//! * [`engine`] — [`engine::Engine`]: plans the reordering (Fig 5),
//!   builds the ASpT decomposition, executes SpMM/SDDMM returning
//!   outputs **in the original row/nonzero order**, and exposes the
//!   simulated performance reports.
//! * [`autotune`] — the §4 trial-and-error strategy: run the candidate
//!   variants, keep the fastest.
//! * [`mod@format`] — the format zoo: SELL-C-σ and CSB as first-class
//!   plan-time execution variants, raced by the autotuner against the
//!   incumbent ASpT layout and persisted in the plan.

#![warn(missing_docs)]

pub mod autotune;
pub mod engine;
pub mod format;
pub mod micro;
pub mod sddmm;
pub mod spgemm;
pub mod spmm;
pub mod spmv;

pub use autotune::{choose_format, FormatTrialReport, FORMAT_SELECTION_K_CAP};
pub use autotune::{
    choose_variant, choose_variant_for_op, choose_variant_spgemm, tuned_engine, tuned_execute,
    Kernel, TrialReport, Variant,
};
pub use engine::{Engine, EngineConfig, EngineConfigBuilder, KernelOp, Output, PrepareReport};
pub use format::{FormatChoice, FormatPayload};
pub use micro::{
    micro_width_for, spmm_aspt_kblocked_auto, spmm_rowwise_kblocked_auto, MICRO_WIDTHS,
};
