//! The §4 trial-and-error strategy.
//!
//! "One can perform row-reordering in the first iteration and do SpMM
//! or SDDMM on both the reordered matrix and the original matrix. If
//! the reordered matrix is faster, keep the row-reordering for the rest
//! of iterations; otherwise, discard the row-reordering." This module
//! runs that trial against the simulated device and reports which
//! variant wins.

use crate::engine::{Engine, EngineConfig, KernelOp, Output};
use crate::format::{FormatChoice, FormatPayload};
use serde::{Deserialize, Serialize};
use spmm_aspt::AsptMatrix;
use spmm_gpu_sim::kernels::{
    simulate_sddmm_aspt, simulate_spgemm_clustered, simulate_spgemm_naive, simulate_spmm_aspt,
    simulate_spmm_rowwise, simulate_spmv_aspt, simulate_spmv_rowwise,
};
use spmm_gpu_sim::{DeviceConfig, SimReport};
use spmm_reorder::{ReorderConfig, ReorderPolicy};
use spmm_sparse::{CsrMatrix, Scalar, SparseError};

/// Which kernel family to tune.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Kernel {
    /// Sparse × dense multiplication.
    Spmm,
    /// Sampled dense-dense multiplication.
    Sddmm,
    /// Sparse × dense-vector multiplication (`k = 1` fast path).
    Spmv,
    /// Sparse × sparse multiplication (Gustavson).
    Spgemm,
}

/// One of the execution strategies the paper compares, plus the format
/// zoo's physical-layout variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// Row-wise kernel on the original matrix (the cuSPARSE-like
    /// baseline; SpMM only — cuSPARSE has no SDDMM, §5.3).
    CusparseLike,
    /// ASpT without reordering (Hong et al.).
    AsptNr,
    /// ASpT with row reordering (this paper).
    AsptRr,
    /// SELL-C-σ physical layout over the (possibly reordered) matrix,
    /// chosen by plan-time format selection ([`choose_format`]).
    SellCSigma,
    /// CSB physical layout over the (possibly reordered) matrix,
    /// chosen by plan-time format selection ([`choose_format`]).
    Csb,
}

/// Simulated outcomes of the trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialReport {
    /// The fastest variant under the simulated device.
    pub chosen: Variant,
    /// cuSPARSE-like report (SpMM trials only).
    pub cusparse_like: Option<SimReport>,
    /// ASpT-NR report.
    pub aspt_nr: SimReport,
    /// ASpT-RR report.
    pub aspt_rr: SimReport,
    /// Whether the reordering plan actually changed anything — when it
    /// did not, RR ≡ NR and the trial is decided by noise-free
    /// simulation ties (NR wins ties).
    pub reordering_applied: bool,
}

impl TrialReport {
    /// Speedup of ASpT-RR over the best competing variant (the paper's
    /// Table 1 quantity for SpMM, Table 2 for SDDMM).
    ///
    /// Degenerate matrices (no nonzeros, zero launch overhead) can
    /// simulate to zero time on *both* sides; that 0/0 is defined as
    /// 1.0 — neither variant did any work, so neither is faster. Only
    /// a genuinely-zero RR time against nonzero competition reports
    /// infinity.
    pub fn rr_speedup_vs_best_other(&self) -> f64 {
        let mut best_other = self.aspt_nr.time_s;
        if let Some(c) = &self.cusparse_like {
            best_other = best_other.min(c.time_s);
        }
        if self.aspt_rr.time_s > 0.0 {
            best_other / self.aspt_rr.time_s
        } else if best_other == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    }
}

/// Runs the trial for `m`: simulate every variant, pick the fastest.
///
/// # Errors
/// Fails when `m` violates the CSR invariants (see `Engine::prepare`).
pub fn choose_variant<T: Scalar>(
    m: &CsrMatrix<T>,
    kernel: Kernel,
    k: usize,
    device: &DeviceConfig,
    reorder: &ReorderConfig,
) -> Result<TrialReport, SparseError> {
    if kernel == Kernel::Spgemm {
        // no B operand in this signature: trial against a shape-compatible
        // proxy with m's own sparsity pattern (dims always compose).
        // Callers holding a real B go through `choose_variant_spgemm`.
        return choose_variant_spgemm(m, &m.transpose(), device, reorder);
    }
    let nr_aspt = AsptMatrix::build(m, &reorder.aspt);
    let config = EngineConfig::builder().reorder(*reorder).k_hint(k).build();
    let engine = Engine::prepare(m, &config)?;

    let (cusparse_like, aspt_nr, aspt_rr) = match kernel {
        Kernel::Spmm => (
            Some(simulate_spmm_rowwise(m, k, device)),
            simulate_spmm_aspt(&nr_aspt, None, k, device),
            engine.simulate_spmm(k, device),
        ),
        Kernel::Sddmm => (
            None,
            simulate_sddmm_aspt(&nr_aspt, None, k, device),
            engine.simulate_sddmm(k, device),
        ),
        Kernel::Spmv => (
            Some(simulate_spmv_rowwise(m, device)),
            simulate_spmv_aspt(&nr_aspt, None, device),
            engine.simulate_spmv(device),
        ),
        Kernel::Spgemm => unreachable!("handled above"),
    };

    let mut chosen = Variant::AsptNr;
    let mut best = aspt_nr.time_s;
    if let Some(c) = &cusparse_like {
        if c.time_s < best {
            best = c.time_s;
            chosen = Variant::CusparseLike;
        }
    }
    if aspt_rr.time_s < best {
        chosen = Variant::AsptRr;
    }

    Ok(TrialReport {
        chosen,
        cusparse_like,
        aspt_nr,
        aspt_rr,
        reordering_applied: engine.plan().needs_reordering(),
    })
}

/// [`choose_variant`] for SpGEMM against a concrete right-hand operand
/// `b`: naive per-row Gustavson on the original matrix (the
/// cuSPARSE-like baseline), panel-clustered Gustavson on the original
/// order (NR), and panel-clustered Gustavson on the reordered rows
/// (RR, through the prepared engine).
///
/// # Errors
/// Fails when `a` violates the CSR invariants or `b.nrows != a.ncols`.
pub fn choose_variant_spgemm<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    device: &DeviceConfig,
    reorder: &ReorderConfig,
) -> Result<TrialReport, SparseError> {
    if b.nrows() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("B with {} rows (A.ncols)", a.ncols()),
            got: format!("{} rows", b.nrows()),
        });
    }
    let config = EngineConfig::builder().reorder(*reorder).build();
    let engine = Engine::prepare(a, &config)?;

    let cusparse_like = Some(simulate_spgemm_naive(a, b, device));
    let aspt_nr = simulate_spgemm_clustered(a, b, reorder.aspt.panel_height, device);
    let aspt_rr = engine.simulate_spgemm(b, device);

    let mut chosen = Variant::AsptNr;
    let mut best = aspt_nr.time_s;
    if let Some(c) = &cusparse_like {
        if c.time_s < best {
            best = c.time_s;
            chosen = Variant::CusparseLike;
        }
    }
    if aspt_rr.time_s < best {
        chosen = Variant::AsptRr;
    }

    Ok(TrialReport {
        chosen,
        cusparse_like,
        aspt_nr,
        aspt_rr,
        reordering_applied: engine.plan().needs_reordering(),
    })
}

/// Convenience: the §4 policy plus trial — reorder only when the trial
/// confirms a win. Returns the engine to use for the remaining
/// iterations.
///
/// # Errors
/// Fails when `m` violates the CSR invariants (see `Engine::prepare`).
pub fn tuned_engine<T: Scalar>(
    m: &CsrMatrix<T>,
    kernel: Kernel,
    k: usize,
    device: &DeviceConfig,
    reorder: &ReorderConfig,
) -> Result<(Engine<T>, TrialReport), SparseError> {
    let report = choose_variant(m, kernel, k, device, reorder)?;
    let reorder = if report.chosen == Variant::AsptRr {
        *reorder
    } else {
        // fall back to no reordering
        let mut no_reorder = *reorder;
        no_reorder.policy = ReorderPolicy {
            skip_round1_dense_ratio: -1.0, // always skip
            skip_round2_avgsim: -1.0,
            force_round1: false,
            force_round2: false,
        };
        no_reorder
    };
    let config = EngineConfig::builder().reorder(reorder).k_hint(k).build();
    let engine = Engine::prepare(m, &config)?;
    Ok((engine, report))
}

/// Default candidate widths for [`choose_k_block`] — the microkernel
/// widths plus powers of two spanning the paper's K sweep (Tables 3/4
/// use 32–512).
pub const DEFAULT_K_BLOCK_CANDIDATES: [usize; 5] = [8, 16, 32, 64, 128];

/// Picks the column-block width for the batched (fused multi-RHS)
/// kernel by simulating [`Engine::simulate_spmm_kblocked`] at each
/// candidate width for a fused operand of total width `k_total`.
/// Candidates are clamped to `[1, k_total]` and deduplicated (every
/// width ≥ `k_total` collapses to the same single-pass kernel).
/// Returns the winning width plus every candidate's report; ties keep
/// the earlier candidate. An empty candidate list falls back to
/// [`DEFAULT_K_BLOCK_CANDIDATES`], so the returned best is always a
/// simulated width with its report in the trial vec.
pub fn choose_k_block<T: Scalar>(
    engine: &Engine<T>,
    k_total: usize,
    candidates: &[usize],
    device: &DeviceConfig,
) -> (usize, Vec<(usize, SimReport)>) {
    let candidates: &[usize] = if candidates.is_empty() {
        &DEFAULT_K_BLOCK_CANDIDATES
    } else {
        candidates
    };
    let mut trials: Vec<(usize, SimReport)> = Vec::with_capacity(candidates.len());
    let mut best = k_total.max(1);
    let mut best_time = f64::INFINITY;
    for &raw in candidates {
        let kb = raw.clamp(1, k_total.max(1));
        if trials.iter().any(|(w, _)| *w == kb) {
            continue;
        }
        let report = engine.simulate_spmm_kblocked(k_total, kb, device);
        if report.time_s < best_time {
            best_time = report.time_s;
            best = kb;
        }
        trials.push((kb, report));
    }
    debug_assert!(
        trials.iter().any(|(w, _)| *w == best),
        "the chosen width must come from a simulated trial"
    );
    (best, trials)
}

/// Plan-time microkernel width selection: simulates the register-
/// blocked k-blocked kernel ([`Engine::simulate_spmm_kblocked_micro`])
/// at every eligible width in [`crate::micro::MICRO_WIDTHS`] and
/// returns the fastest, or `None` when `k_total` is narrower than every
/// specialized width (the generic path runs). The fused width each
/// trial simulates is capped at [`MICRO_SELECTION_K_CAP`] so selection
/// cost stays bounded while every candidate still divides the trial
/// operand evenly.
pub fn choose_micro_width<T: Scalar>(
    engine: &Engine<T>,
    k_total: usize,
    device: &DeviceConfig,
) -> Option<usize> {
    let eligible: Vec<usize> = crate::micro::MICRO_WIDTHS
        .iter()
        .copied()
        .filter(|&w| w <= k_total)
        .collect();
    if eligible.is_empty() {
        return None;
    }
    let k_sim = k_total.min(MICRO_SELECTION_K_CAP);
    let mut best = eligible[0];
    let mut best_time = f64::INFINITY;
    for &w in &eligible {
        let report = engine.simulate_spmm_kblocked_micro(k_sim, w, device);
        if report.time_s < best_time {
            best_time = report.time_s;
            best = w;
        }
    }
    crate::micro::micro_width_for(best)
}

/// Fused-operand width cap for [`choose_micro_width`] trials: a common
/// multiple of the microkernel widths (3 × 32), so every candidate sees
/// only full-width passes and selection cost does not grow with the
/// caller's `k_hint`.
pub const MICRO_SELECTION_K_CAP: usize = 96;

/// Dense-width cap for [`choose_format`] trials, mirroring
/// [`MICRO_SELECTION_K_CAP`]: the traffic *ordering* between layouts is
/// stable in `k` well before the caller's full `k_hint`, so selection
/// cost stays bounded.
pub const FORMAT_SELECTION_K_CAP: usize = 96;

/// Outcome of the plan-time format trial: the incumbent ASpT/CSR
/// configuration raced against every applicable format-zoo candidate
/// on the gpu-sim transaction model.
#[derive(Debug, Clone)]
pub struct FormatTrialReport {
    /// The winning layout (`Csr` when no challenger strictly beat the
    /// incumbent — ties keep CSR, so a chosen format never regresses on
    /// the simulated metric).
    pub chosen: FormatChoice,
    /// The incumbent's simulated SpMM performance (this engine's ASpT
    /// configuration).
    pub incumbent: SimReport,
    /// Every candidate that was built and simulated.
    pub candidates: Vec<(FormatChoice, SimReport)>,
    /// Candidates skipped by the structure heuristics or the "format
    /// not applicable" guards (also counted as `tune.format.skipped`).
    pub skipped: u32,
}

impl FormatTrialReport {
    /// Simulated speedup of the chosen configuration over the
    /// incumbent (1.0 when CSR was kept; never below 1.0 by
    /// construction).
    pub fn speedup_vs_incumbent(&self) -> f64 {
        let chosen_time = self
            .candidates
            .iter()
            .find(|(c, _)| *c == self.chosen)
            .map_or(self.incumbent.time_s, |(_, r)| r.time_s);
        if chosen_time > 0.0 {
            self.incumbent.time_s / chosen_time
        } else {
            1.0
        }
    }
}

/// Plan-time format selection — the §4 trial widened to physical
/// layouts. Builds every applicable format-zoo candidate over the
/// engine's *reordered* matrix (SELL-C-σ at the σ candidates, CSB at
/// the β candidates), simulates each against the incumbent ASpT
/// configuration, and returns the winning payload (`None` keeps CSR).
///
/// Hopeless candidates are skipped before they are built, mirroring the
/// paper's skip heuristics: SELL candidates whose padded layout would
/// blow the [`crate::format::MAX_FORMAT_PADDING`] cap, and CSB
/// candidates whose estimated block occupancy (one `O(nnz)` pass) is
/// below [`crate::format::MIN_CSB_OCCUPANCY`]. Skips are counted in the
/// engine's telemetry as `tune.format.skipped`.
///
/// A challenger must be *strictly* faster than both the incumbent and
/// every other candidate; ties keep CSR. The autotuner therefore never
/// picks a format that regresses on the simulated metric.
pub fn choose_format<T: Scalar>(
    engine: &Engine<T>,
    k_total: usize,
    device: &DeviceConfig,
) -> (Option<FormatPayload<T>>, FormatTrialReport) {
    let telemetry = engine.telemetry_handle();
    let m = engine.reordered();
    let k = k_total.clamp(1, FORMAT_SELECTION_K_CAP);
    let incumbent = engine.simulate_spmm(k, device);

    let mut skipped = 0u32;
    let skip = |n: &mut u32| {
        *n += 1;
        telemetry.counter("tune.format.skipped", 1);
    };
    let mut candidates: Vec<(FormatChoice, SimReport)> = Vec::new();
    let mut best: Option<FormatPayload<T>> = None;
    let mut best_time = incumbent.time_s;

    for sigma in crate::format::SELL_SIGMA_CANDIDATES {
        let choice = FormatChoice::SellCSigma {
            slice_height: crate::format::SELL_SLICE_HEIGHT,
            sigma,
        };
        match FormatPayload::build(choice, m) {
            Ok(Some(payload)) => {
                let report = payload.simulate_spmm(k, device);
                if report.time_s < best_time {
                    best_time = report.time_s;
                    best = Some(payload);
                }
                candidates.push((choice, report));
            }
            Ok(None) => unreachable!("SellCSigma always builds a payload"),
            Err(_) => skip(&mut skipped),
        }
    }

    let occupancy = |beta: usize| -> f64 {
        let mut blocks = std::collections::HashSet::new();
        for (r, c, _) in m.iter() {
            blocks.insert(((r as usize / beta) as u64) << 32 | (c as usize / beta) as u64);
        }
        if blocks.is_empty() {
            0.0
        } else {
            m.nnz() as f64 / blocks.len() as f64
        }
    };
    for beta in crate::format::CSB_BETA_CANDIDATES {
        let choice = FormatChoice::Csb { beta };
        if occupancy(beta) < crate::format::MIN_CSB_OCCUPANCY {
            skip(&mut skipped);
            continue;
        }
        match FormatPayload::build(choice, m) {
            Ok(Some(payload)) => {
                let report = payload.simulate_spmm(k, device);
                if report.time_s < best_time {
                    best_time = report.time_s;
                    best = Some(payload);
                }
                candidates.push((choice, report));
            }
            Ok(None) => unreachable!("Csb always builds a payload"),
            Err(_) => skip(&mut skipped),
        }
    }

    let chosen = best
        .as_ref()
        .map_or(FormatChoice::Csr, |payload| payload.choice());
    (
        best,
        FormatTrialReport {
            chosen,
            incumbent,
            candidates,
            skipped,
        },
    )
}

/// [`choose_variant`] for a concrete [`KernelOp`]: the kernel family
/// and dense width are read off the op, so callers that already hold
/// an op (the serving layer, [`tuned_execute`]) don't restate them.
///
/// # Errors
/// Fails when `m` violates the CSR invariants (see `Engine::prepare`).
pub fn choose_variant_for_op<T: Scalar>(
    m: &CsrMatrix<T>,
    op: &KernelOp<'_, T>,
    device: &DeviceConfig,
    reorder: &ReorderConfig,
) -> Result<TrialReport, SparseError> {
    // SpGEMM ops carry their real B operand; everything else routes by
    // kernel family and dense width.
    if let KernelOp::Spgemm { b } = op {
        return choose_variant_spgemm(m, b, device, reorder);
    }
    choose_variant(m, op.op_kind(), op.k().unwrap_or(1), device, reorder)
}

/// Runs the §4 trial, prepares the winning engine and executes `op`
/// through the unified [`Engine::execute`] dispatch — trial-and-error
/// and execution in one call for one-shot workloads.
///
/// # Errors
/// Fails when `m` violates the CSR invariants or the op's operands
/// have mismatched shapes.
pub fn tuned_execute<T: Scalar>(
    m: &CsrMatrix<T>,
    op: KernelOp<'_, T>,
    device: &DeviceConfig,
    reorder: &ReorderConfig,
) -> Result<(Output<T>, TrialReport), SparseError> {
    let report = choose_variant_for_op(m, &op, device, reorder)?;
    let reorder = if report.chosen == Variant::AsptRr {
        *reorder
    } else {
        let mut no_reorder = *reorder;
        no_reorder.policy = ReorderPolicy {
            skip_round1_dense_ratio: -1.0, // always skip
            skip_round2_avgsim: -1.0,
            force_round1: false,
            force_round2: false,
        };
        no_reorder
    };
    let config = EngineConfig::builder()
        .reorder(reorder)
        .k_hint(op.k().unwrap_or(1))
        .build();
    let engine = Engine::prepare(m, &config)?;
    Ok((engine.execute(op)?, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_aspt::AsptConfig;
    use spmm_data::generators;

    fn device() -> DeviceConfig {
        DeviceConfig {
            num_sms: 4,
            blocks_per_sm: 2,
            l2_bytes: 16 << 10,
            launch_overhead: 0.0,
            ..DeviceConfig::p100()
        }
    }

    fn reorder_cfg() -> ReorderConfig {
        ReorderConfig::builder()
            .aspt(AsptConfig {
                panel_height: 16,
                min_col_nnz: 2,
                tile_width: 32,
            })
            .build()
    }

    #[test]
    fn rr_wins_on_shuffled_clusters() {
        let m = generators::shuffled_block_diagonal::<f32>(32, 16, 96, 24, 7);
        let report = choose_variant(&m, Kernel::Spmm, 32, &device(), &reorder_cfg()).unwrap();
        assert!(report.reordering_applied);
        assert_eq!(
            report.chosen,
            Variant::AsptRr,
            "report: {:?}",
            report.chosen
        );
        assert!(report.rr_speedup_vs_best_other() > 1.0);
    }

    #[test]
    fn rr_never_chosen_when_no_reordering_happened() {
        let m = generators::diagonal::<f32>(512, 3);
        let report = choose_variant(&m, Kernel::Spmm, 32, &device(), &reorder_cfg()).unwrap();
        assert!(!report.reordering_applied);
        assert_ne!(report.chosen, Variant::AsptRr, "identical plans tie to NR");
    }

    #[test]
    fn sddmm_trial_has_no_cusparse() {
        let m = generators::uniform_random::<f32>(256, 256, 8, 5);
        let report = choose_variant(&m, Kernel::Sddmm, 32, &device(), &reorder_cfg()).unwrap();
        assert!(report.cusparse_like.is_none());
    }

    #[test]
    fn tuned_engine_matches_trial_choice() {
        let m = generators::shuffled_block_diagonal::<f32>(32, 16, 96, 24, 9);
        let (engine, report) =
            tuned_engine(&m, Kernel::Spmm, 32, &device(), &reorder_cfg()).unwrap();
        if report.chosen == Variant::AsptRr {
            assert!(engine.plan().needs_reordering());
        } else {
            assert!(!engine.plan().needs_reordering());
        }
    }

    #[test]
    fn op_routing_matches_explicit_kernel_args() {
        let m = generators::shuffled_block_diagonal::<f32>(32, 16, 96, 24, 7);
        let x = generators::random_dense::<f32>(m.ncols(), 32, 1);
        let op = KernelOp::Spmm { x: &x };
        let via_op = choose_variant_for_op(&m, &op, &device(), &reorder_cfg()).unwrap();
        let direct = choose_variant(&m, Kernel::Spmm, 32, &device(), &reorder_cfg()).unwrap();
        assert_eq!(via_op.chosen, direct.chosen);
        let (out, report) = tuned_execute(&m, op, &device(), &reorder_cfg()).unwrap();
        assert_eq!(report.chosen, direct.chosen);
        assert!(out.into_dense().is_some());
    }

    #[test]
    fn spmv_trial_runs_all_variants() {
        let m = generators::shuffled_block_diagonal::<f32>(32, 16, 96, 24, 7);
        let report = choose_variant(&m, Kernel::Spmv, 1, &device(), &reorder_cfg()).unwrap();
        assert!(
            report.cusparse_like.is_some(),
            "SpMV has a rowwise baseline"
        );
        assert!(report.aspt_nr.time_s > 0.0);
        assert!(report.aspt_rr.time_s > 0.0);
        // op routing and execution through the tuned path
        let x = generators::random_dense::<f32>(m.ncols(), 1, 3);
        let op = KernelOp::Spmv { x: x.data() };
        let (out, _) = tuned_execute(&m, op, &device(), &reorder_cfg()).unwrap();
        assert!(out.into_vector().is_some());
    }

    #[test]
    fn spgemm_trial_uses_the_real_b_operand() {
        let a = generators::power_law::<f32>(256, 256, 4000, 0.8, 11);
        let b = generators::uniform_random::<f32>(256, 128, 6, 5);
        let report = choose_variant_spgemm(&a, &b, &device(), &reorder_cfg()).unwrap();
        assert!(
            report.cusparse_like.is_some(),
            "SpGEMM has a naive baseline"
        );
        // op routing passes the real B through
        let op = KernelOp::Spgemm { b: &b };
        let via_op = choose_variant_for_op(&a, &op, &device(), &reorder_cfg()).unwrap();
        assert_eq!(via_op.chosen, report.chosen);
        // the B-less signature falls back to the transpose proxy
        let proxy = choose_variant(&a, Kernel::Spgemm, 1, &device(), &reorder_cfg()).unwrap();
        assert!(proxy.aspt_nr.time_s > 0.0);
        // tuned execution emits a sparse product
        let (out, _) = tuned_execute(&a, op, &device(), &reorder_cfg()).unwrap();
        assert!(out.into_sparse().is_some());
        // shape mismatch is a structured error
        let bad = generators::uniform_random::<f32>(17, 8, 3, 1);
        assert!(choose_variant_spgemm(&a, &bad, &device(), &reorder_cfg()).is_err());
    }

    #[test]
    fn rr_speedup_is_finite_on_empty_matrix() {
        // regression: with zero launch overhead an all-empty matrix
        // simulates to time 0 on every variant, and the old
        // `best_other / aspt_rr.time_s` returned NaN
        let m = CsrMatrix::<f32>::from_parts(8, 8, vec![0; 9], vec![], vec![]).unwrap();
        let report = choose_variant(&m, Kernel::Spmm, 32, &device(), &reorder_cfg()).unwrap();
        assert_eq!(report.aspt_rr.time_s, 0.0, "fixture must hit the 0/0 case");
        let speedup = report.rr_speedup_vs_best_other();
        assert!(
            speedup.is_finite(),
            "0/0 must not be NaN/inf, got {speedup}"
        );
        assert_eq!(speedup, 1.0, "no work on either side means no speedup");
    }

    #[test]
    fn rr_speedup_guards_division_by_zero_time() {
        let sim = |time_s: f64| SimReport {
            traffic: Default::default(),
            flops: 0,
            time_s,
            t_dram: 0.0,
            t_l2: 0.0,
            t_shared: 0.0,
            t_compute: 0.0,
            gflops: 0.0,
        };
        let report = |rr: f64, nr: f64| TrialReport {
            chosen: Variant::AsptRr,
            cusparse_like: None,
            aspt_nr: sim(nr),
            aspt_rr: sim(rr),
            reordering_applied: true,
        };
        assert_eq!(report(0.0, 0.0).rr_speedup_vs_best_other(), 1.0);
        assert_eq!(report(2.0, 1.0).rr_speedup_vs_best_other(), 0.5);
        // genuinely-zero RR against nonzero competition is infinite,
        // not NaN
        assert_eq!(report(0.0, 1.0).rr_speedup_vs_best_other(), f64::INFINITY);
    }

    #[test]
    fn choose_k_block_picks_the_fastest_simulated_width() {
        let m = generators::block_diagonal::<f32>(32, 16, 24, 12, 3);
        let config = EngineConfig::builder().reorder(reorder_cfg()).build();
        let engine = Engine::prepare(&m, &config).unwrap();
        let (best, trials) = choose_k_block(&engine, 128, &DEFAULT_K_BLOCK_CANDIDATES, &device());
        assert!(!trials.is_empty());
        assert!(trials.iter().any(|(w, _)| *w == best));
        let best_time = trials
            .iter()
            .find(|(w, _)| *w == best)
            .map(|(_, r)| r.time_s)
            .unwrap();
        for (w, r) in &trials {
            assert!(
                best_time <= r.time_s,
                "width {w} ({}) beats chosen {best} ({best_time})",
                r.time_s
            );
            // blocking never changes the arithmetic
            assert_eq!(r.flops, trials[0].1.flops);
        }
        // candidates above k_total collapse to one single-pass trial
        let (_, clamped) = choose_k_block(&engine, 8, &[16, 32, 64], &device());
        assert_eq!(clamped.len(), 1);
        assert_eq!(clamped[0].0, 8);
    }

    #[test]
    fn choose_k_block_empty_candidates_fall_back_to_defaults() {
        // regression: an empty candidate list used to crown
        // `k_total.max(1)` with an empty trial vec — a width that was
        // never simulated
        let m = generators::block_diagonal::<f32>(32, 16, 24, 12, 3);
        let config = EngineConfig::builder().reorder(reorder_cfg()).build();
        let engine = Engine::prepare(&m, &config).unwrap();
        let (best, trials) = choose_k_block(&engine, 128, &[], &device());
        assert!(!trials.is_empty(), "empty candidates must still simulate");
        assert!(trials.iter().any(|(w, _)| *w == best));
        let (def_best, def_trials) =
            choose_k_block(&engine, 128, &DEFAULT_K_BLOCK_CANDIDATES, &device());
        assert_eq!(best, def_best);
        assert_eq!(trials.len(), def_trials.len());

        // fully-duplicate-after-clamp candidates dedupe to one
        // *simulated* trial whose width is the chosen best
        let (best, trials) = choose_k_block(&engine, 1, &[64, 128], &device());
        assert_eq!(best, 1);
        assert_eq!(trials.len(), 1);
        assert_eq!(trials[0].0, 1);
    }

    #[test]
    fn choose_micro_width_picks_a_specialized_width() {
        let m = generators::block_diagonal::<f32>(32, 16, 24, 12, 3);
        let config = EngineConfig::builder().reorder(reorder_cfg()).build();
        let engine = Engine::prepare(&m, &config).unwrap();
        let w = choose_micro_width(&engine, 128, &device());
        assert!(
            matches!(w, Some(w) if crate::micro::MICRO_WIDTHS.contains(&w)),
            "wide operands must select a specialized width, got {w:?}"
        );
        // exactly the narrowest width is eligible at k = 8
        assert_eq!(choose_micro_width(&engine, 8, &device()), Some(8));
        // operands narrower than every specialized width run generic
        assert_eq!(choose_micro_width(&engine, 7, &device()), None);
        assert_eq!(choose_micro_width(&engine, 0, &device()), None);
    }

    #[test]
    fn trial_reports_all_positive_times() {
        let m = generators::power_law::<f32>(512, 512, 6000, 0.8, 11);
        let report = choose_variant(&m, Kernel::Spmm, 32, &device(), &reorder_cfg()).unwrap();
        assert!(report.aspt_nr.time_s > 0.0);
        assert!(report.aspt_rr.time_s > 0.0);
        assert!(report.cusparse_like.unwrap().time_s > 0.0);
    }
}
