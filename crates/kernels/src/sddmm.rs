//! SDDMM kernels: `O.value[j] = <Y_i , X_c> · S.value[j]` for every
//! nonzero `(i, c)` of `S` (paper Alg 2).
//!
//! Outputs are the values of a sparse matrix with exactly `S`'s
//! structure, returned as a `Vec<T>` parallel to `S.values()`.

use rayon::prelude::*;
use spmm_aspt::AsptMatrix;
use spmm_sparse::{CsrMatrix, DenseMatrix, Scalar, SparseError};

fn check_dims<T: Scalar>(
    s_nrows: usize,
    s_ncols: usize,
    x: &DenseMatrix<T>,
    y: &DenseMatrix<T>,
) -> Result<(), SparseError> {
    if x.nrows() != s_ncols {
        return Err(SparseError::DimensionMismatch {
            expected: format!("X.nrows == S.ncols ({s_ncols})"),
            got: format!("{}", x.nrows()),
        });
    }
    if y.nrows() != s_nrows {
        return Err(SparseError::DimensionMismatch {
            expected: format!("Y.nrows == S.nrows ({s_nrows})"),
            got: format!("{}", y.nrows()),
        });
    }
    if x.ncols() != y.ncols() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("X.ncols ({}) == Y.ncols", x.ncols()),
            got: format!("{}", y.ncols()),
        });
    }
    Ok(())
}

#[inline]
fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = T::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc = x.mul_add(y, acc);
    }
    acc
}

/// Sequential Alg 2 reference.
pub fn sddmm_rowwise_seq<T: Scalar>(
    s: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    y: &DenseMatrix<T>,
) -> Result<Vec<T>, SparseError> {
    check_dims(s.nrows(), s.ncols(), x, y)?;
    let mut out = Vec::with_capacity(s.nnz());
    for i in 0..s.nrows() {
        let y_row = y.row(i);
        let (cols, vals) = s.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            out.push(dot(y_row, x.row(c as usize)) * v);
        }
    }
    Ok(out)
}

/// Row-parallel Alg 2 (order of the output matches `s.values()`).
pub fn sddmm_rowwise_par<T: Scalar>(
    s: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    y: &DenseMatrix<T>,
) -> Result<Vec<T>, SparseError> {
    check_dims(s.nrows(), s.ncols(), x, y)?;
    let out: Vec<T> = (0..s.nrows())
        .into_par_iter()
        .flat_map_iter(|i| {
            let y_row = y.row(i);
            let (cols, vals) = s.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| dot(y_row, x.row(c as usize)) * v)
        })
        .collect();
    Ok(out)
}

/// ASpT-structured SDDMM. The output stays in the *source CSR order* of
/// the decomposed matrix, reconstructed through the tiles' and
/// remainder's `src_idx` maps. Panels own contiguous source-nonzero
/// ranges, so the scatter is panel-parallel and safe.
pub fn sddmm_aspt<T: Scalar>(
    aspt: &AsptMatrix<T>,
    x: &DenseMatrix<T>,
    y: &DenseMatrix<T>,
    src_rowptr: &[usize],
) -> Result<Vec<T>, SparseError> {
    sddmm_aspt_with(aspt, x, y, src_rowptr, dot)
}

/// [`sddmm_aspt`] with a plan-selected microkernel dot product:
/// `micro_width` in [`crate::micro::MICRO_WIDTHS`] routes the inner
/// product through the fixed-trip-count chunked dot (bit-identical —
/// one accumulator chain in the same element order), anything else
/// runs the plain slice dot.
pub fn sddmm_aspt_auto<T: Scalar>(
    aspt: &AsptMatrix<T>,
    x: &DenseMatrix<T>,
    y: &DenseMatrix<T>,
    src_rowptr: &[usize],
    micro_width: Option<usize>,
) -> Result<Vec<T>, SparseError> {
    use crate::micro::dot_chunked;
    match micro_width {
        Some(8) => sddmm_aspt_with(aspt, x, y, src_rowptr, dot_chunked::<T, 8>),
        Some(16) => sddmm_aspt_with(aspt, x, y, src_rowptr, dot_chunked::<T, 16>),
        Some(32) => sddmm_aspt_with(aspt, x, y, src_rowptr, dot_chunked::<T, 32>),
        _ => sddmm_aspt(aspt, x, y, src_rowptr),
    }
}

/// The shared ASpT SDDMM body, generic over the inner-product kernel so
/// the monomorphized chunked dot and the plain slice dot run the exact
/// same traversal and scatter.
fn sddmm_aspt_with<T: Scalar, D>(
    aspt: &AsptMatrix<T>,
    x: &DenseMatrix<T>,
    y: &DenseMatrix<T>,
    src_rowptr: &[usize],
    dot: D,
) -> Result<Vec<T>, SparseError>
where
    D: Fn(&[T], &[T]) -> T + Sync,
{
    check_dims(aspt.nrows(), aspt.ncols(), x, y)?;
    let nnz = aspt.nnz();
    let mut out = vec![T::ZERO; nnz];

    // slice the output by panel source ranges
    let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(aspt.panels().len());
    let mut rest: &mut [T] = &mut out;
    let mut base = 0usize;
    for panel in aspt.panels() {
        let end = src_rowptr[panel.row_end];
        let (head, tail) = rest.split_at_mut(end - base);
        chunks.push((base, head));
        rest = tail;
        base = end;
    }

    let remainder = aspt.remainder();
    aspt.panels()
        .par_iter()
        .zip(chunks)
        .for_each(|(panel, (base, out_chunk))| {
            let panel_rows = panel.row_end - panel.row_start;
            for tile in &panel.tiles {
                for rel in 0..panel_rows {
                    let y_row = y.row(panel.row_start + rel);
                    for e in tile.rowptr[rel]..tile.rowptr[rel + 1] {
                        let c = tile.colidx[e] as usize;
                        let src = tile.src_idx[e] as usize;
                        out_chunk[src - base] = dot(y_row, x.row(c)) * tile.values[e];
                    }
                }
            }
            for r in panel.rows() {
                let y_row = y.row(r);
                let (lo, hi) = (remainder.rowptr()[r], remainder.rowptr()[r + 1]);
                for e in lo..hi {
                    let c = remainder.colidx()[e] as usize;
                    let src = aspt.remainder_src()[e] as usize;
                    out_chunk[src - base] = dot(y_row, x.row(c)) * remainder.values()[e];
                }
            }
        });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_aspt::AsptConfig;
    use spmm_data::generators;

    fn tol<T: Scalar>() -> f64 {
        if T::BYTES == 4 {
            1e-3
        } else {
            1e-10
        }
    }

    fn max_diff<T: Scalar>(a: &[T], b: &[T]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x.to_f64() - y.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    fn check_all_variants<T: Scalar>(s: &CsrMatrix<T>, k: usize, seed: u64) {
        let x = generators::random_dense::<T>(s.ncols(), k, seed);
        let y = generators::random_dense::<T>(s.nrows(), k, seed ^ 0xff);
        let reference = sddmm_rowwise_seq(s, &x, &y).unwrap();
        assert_eq!(reference.len(), s.nnz());

        let par = sddmm_rowwise_par(s, &x, &y).unwrap();
        assert!(max_diff(&reference, &par) <= tol::<T>());

        for cfg in [
            AsptConfig::paper_figure(),
            AsptConfig {
                panel_height: 8,
                min_col_nnz: 2,
                tile_width: 4,
            },
        ] {
            let aspt = AsptMatrix::build(s, &cfg);
            let tiled = sddmm_aspt(&aspt, &x, &y, s.rowptr()).unwrap();
            assert!(
                max_diff(&reference, &tiled) <= tol::<T>(),
                "aspt deviates with {cfg:?}"
            );
        }
    }

    #[test]
    fn known_small_sddmm() {
        // S = [[0, 2], [1, 0]], X rows: [1,1], [2,0]; Y rows: [3,4], [5,6]
        let s = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![2.0f64, 1.0]).unwrap();
        let x = DenseMatrix::from_vec(2, 2, vec![1.0, 1.0, 2.0, 0.0]);
        let y = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let out = sddmm_rowwise_seq(&s, &x, &y).unwrap();
        // nnz (0,1): <Y0, X1> * 2 = (3*2 + 4*0)*2 = 12
        // nnz (1,0): <Y1, X0> * 1 = (5+6)*1 = 11
        assert_eq!(out, vec![12.0, 11.0]);
    }

    #[test]
    fn all_variants_agree_scattered_f64() {
        let s = generators::uniform_random::<f64>(80, 64, 5, 3);
        check_all_variants(&s, 16, 5);
    }

    #[test]
    fn all_variants_agree_clustered_f32() {
        let s = generators::block_diagonal::<f32>(5, 16, 24, 10, 7);
        check_all_variants(&s, 8, 9);
    }

    #[test]
    fn all_variants_agree_with_empty_rows() {
        let s = CsrMatrix::from_parts(
            4,
            3,
            vec![0, 2, 2, 3, 3],
            vec![0, 2, 1],
            vec![1.0f64, 2.0, 3.0],
        )
        .unwrap();
        check_all_variants(&s, 4, 11);
    }

    #[test]
    fn scaling_by_sparse_values_is_applied() {
        let s = CsrMatrix::from_parts(1, 1, vec![0, 1], vec![0], vec![10.0f64]).unwrap();
        let x = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]);
        let y = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]);
        let out = sddmm_rowwise_seq(&s, &x, &y).unwrap();
        assert_eq!(out, vec![(3.0 + 8.0) * 10.0]);
    }

    #[test]
    fn dimension_checks() {
        let s = CsrMatrix::<f64>::identity(3);
        let x = generators::random_dense::<f64>(3, 4, 1);
        let y3 = generators::random_dense::<f64>(3, 4, 2);
        let y_bad_rows = generators::random_dense::<f64>(2, 4, 2);
        let y_bad_k = generators::random_dense::<f64>(3, 5, 2);
        assert!(sddmm_rowwise_seq(&s, &x, &y3).is_ok());
        assert!(sddmm_rowwise_seq(&s, &x, &y_bad_rows).is_err());
        assert!(sddmm_rowwise_seq(&s, &x, &y_bad_k).is_err());
        let x_bad = generators::random_dense::<f64>(4, 4, 1);
        assert!(sddmm_rowwise_seq(&s, &x_bad, &y3).is_err());
    }

    #[test]
    fn micro_dot_sddmm_is_bit_identical_to_generic() {
        let s = generators::block_diagonal::<f64>(5, 16, 24, 10, 7);
        for k in [7, 16, 33] {
            let x = generators::random_dense::<f64>(s.ncols(), k, 3);
            let y = generators::random_dense::<f64>(s.nrows(), k, 5);
            let aspt = AsptMatrix::build(&s, &AsptConfig::paper_figure());
            let generic = sddmm_aspt(&aspt, &x, &y, s.rowptr()).unwrap();
            for w in crate::micro::MICRO_WIDTHS {
                let micro = sddmm_aspt_auto(&aspt, &x, &y, s.rowptr(), Some(w)).unwrap();
                let same = generic
                    .iter()
                    .zip(&micro)
                    .all(|(a, b)| a.to_bits64() == b.to_bits64());
                assert!(same, "micro dot deviates at k={k} width={w}");
            }
            // a non-specialized width falls back to the plain dot
            let fallback = sddmm_aspt_auto(&aspt, &x, &y, s.rowptr(), None).unwrap();
            assert_eq!(generic, fallback);
        }
    }

    #[test]
    fn empty_sparse_matrix() {
        let s = CsrMatrix::<f64>::from_parts(2, 2, vec![0, 0, 0], vec![], vec![]).unwrap();
        let x = generators::random_dense::<f64>(2, 4, 1);
        let y = generators::random_dense::<f64>(2, 4, 2);
        assert!(sddmm_rowwise_seq(&s, &x, &y).unwrap().is_empty());
        let aspt = AsptMatrix::build(&s, &AsptConfig::default());
        assert!(sddmm_aspt(&aspt, &x, &y, s.rowptr()).unwrap().is_empty());
    }
}
