//! SpGEMM kernels: `C = A · B` with both operands sparse (Gustavson's
//! row-by-row formulation).
//!
//! The paper's transformation is op-agnostic: after LSH clustering and
//! two-round reordering, rows with similar column patterns sit in the
//! same ASpT panel. Gustavson's algorithm exploits exactly that —
//! similar `A` rows touch similar `B` rows, so their partial products
//! land in the same accumulator slots. [`spgemm_clustered`] makes the
//! reuse explicit: one dense accumulator per panel, reset between rows
//! via a touched-columns list and never reallocated, so a panel of `h`
//! similar rows pays for one accumulator and `h` sparse resets instead
//! of `h` full `b.ncols()`-wide clears.
//!
//! All variants traverse `A`-row nonzeros in stored (ascending-column)
//! order and fold each partial product with a single `mul_add`, so the
//! per-output-element accumulation order — and therefore every output
//! bit — is identical across [`spgemm_gustavson_seq`],
//! [`spgemm_gustavson_par`] and [`spgemm_clustered`].

use rayon::prelude::*;
use spmm_sparse::{CsrMatrix, Scalar, SparseError};

fn check_dims<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> Result<(), SparseError> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: format!("A.ncols ({}) == B.nrows", a.ncols()),
            got: format!("{}", b.nrows()),
        });
    }
    Ok(())
}

/// One Gustavson row: scatter `Σ a[i,p] · B[p, :]` into the dense
/// accumulator, recording first-touched columns. Shared by every
/// variant so the floating-point fold order is identical everywhere.
#[inline]
fn accumulate_row<T: Scalar>(
    a_cols: &[u32],
    a_vals: &[T],
    b: &CsrMatrix<T>,
    acc: &mut [T],
    present: &mut [bool],
    touched: &mut Vec<u32>,
) {
    for (&ac, &av) in a_cols.iter().zip(a_vals) {
        let (b_cols, b_vals) = b.row(ac as usize);
        for (&bc, &bv) in b_cols.iter().zip(b_vals) {
            let j = bc as usize;
            if !present[j] {
                present[j] = true;
                touched.push(bc);
            }
            acc[j] = av.mul_add(bv, acc[j]);
        }
    }
}

/// Drains the accumulator into sorted `(cols, vals)` output and resets
/// only the touched slots, leaving `acc`/`present` clean for the next
/// row at `O(touched)` cost.
#[inline]
fn drain_row<T: Scalar>(
    acc: &mut [T],
    present: &mut [bool],
    touched: &mut Vec<u32>,
    out_cols: &mut Vec<u32>,
    out_vals: &mut Vec<T>,
) {
    touched.sort_unstable();
    for &c in touched.iter() {
        out_cols.push(c);
        out_vals.push(acc[c as usize]);
        acc[c as usize] = T::ZERO;
        present[c as usize] = false;
    }
    touched.clear();
}

fn assemble<T: Scalar>(nrows: usize, ncols: usize, rows: Vec<(Vec<u32>, Vec<T>)>) -> CsrMatrix<T> {
    let nnz = rows.iter().map(|(c, _)| c.len()).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    let mut colidx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    rowptr.push(0usize);
    for (cols, vals) in rows {
        colidx.extend_from_slice(&cols);
        values.extend_from_slice(&vals);
        rowptr.push(colidx.len());
    }
    CsrMatrix::from_parts(nrows, ncols, rowptr, colidx, values)
        .expect("Gustavson emits sorted, in-bounds, duplicate-free columns")
}

/// Sequential naive per-row Gustavson — the reference every other
/// variant (and the serving layer's exactness checks) compare against.
/// Allocates a fresh dense accumulator for every row, the baseline the
/// clustered variant's reuse is measured over.
pub fn spgemm_gustavson_seq<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
) -> Result<CsrMatrix<T>, SparseError> {
    check_dims(a, b)?;
    let mut rows = Vec::with_capacity(a.nrows());
    for i in 0..a.nrows() {
        // naive: per-row allocation, no reuse across rows
        let mut acc = vec![T::ZERO; b.ncols()];
        let mut present = vec![false; b.ncols()];
        let mut touched = Vec::new();
        let (a_cols, a_vals) = a.row(i);
        accumulate_row(a_cols, a_vals, b, &mut acc, &mut present, &mut touched);
        let mut cols = Vec::with_capacity(touched.len());
        let mut vals = Vec::with_capacity(touched.len());
        drain_row(&mut acc, &mut present, &mut touched, &mut cols, &mut vals);
        rows.push((cols, vals));
    }
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

/// Row-parallel naive Gustavson: one rayon task (and one fresh
/// accumulator) per row. Bit-identical to [`spgemm_gustavson_seq`] —
/// rows are independent and the per-row fold order is shared. This is
/// the serving layer's fallback kernel.
pub fn spgemm_gustavson_par<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
) -> Result<CsrMatrix<T>, SparseError> {
    check_dims(a, b)?;
    let rows: Vec<(Vec<u32>, Vec<T>)> = (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let mut acc = vec![T::ZERO; b.ncols()];
            let mut present = vec![false; b.ncols()];
            let mut touched = Vec::new();
            let (a_cols, a_vals) = a.row(i);
            accumulate_row(a_cols, a_vals, b, &mut acc, &mut present, &mut touched);
            let mut cols = Vec::with_capacity(touched.len());
            let mut vals = Vec::with_capacity(touched.len());
            drain_row(&mut acc, &mut present, &mut touched, &mut cols, &mut vals);
            (cols, vals)
        })
        .collect();
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

/// Cluster-wise Gustavson: rows are processed in panels of
/// `panel_height` (the ASpT panel grouping the reordering pipeline
/// already produces — similar rows are adjacent). Each panel task owns
/// ONE dense accumulator, reset between rows via the touched-columns
/// list and never reallocated, so similar rows amortize both the
/// allocation and the clear. Bit-identical to
/// [`spgemm_gustavson_seq`]: reuse changes *when* slots are cleared,
/// never the fold order.
pub fn spgemm_clustered<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &CsrMatrix<T>,
    panel_height: usize,
) -> Result<CsrMatrix<T>, SparseError> {
    check_dims(a, b)?;
    let h = panel_height.max(1);
    let npanels = a.nrows().div_ceil(h);
    let panels: Vec<Vec<(Vec<u32>, Vec<T>)>> = (0..npanels)
        .into_par_iter()
        .map(|p| {
            let row_start = p * h;
            let row_end = (row_start + h).min(a.nrows());
            // one accumulator per panel, shared by every row in it
            let mut acc = vec![T::ZERO; b.ncols()];
            let mut present = vec![false; b.ncols()];
            let mut touched = Vec::new();
            let mut rows = Vec::with_capacity(row_end - row_start);
            for i in row_start..row_end {
                let (a_cols, a_vals) = a.row(i);
                accumulate_row(a_cols, a_vals, b, &mut acc, &mut present, &mut touched);
                let mut cols = Vec::with_capacity(touched.len());
                let mut vals = Vec::with_capacity(touched.len());
                drain_row(&mut acc, &mut present, &mut touched, &mut cols, &mut vals);
                rows.push((cols, vals));
            }
            rows
        })
        .collect();
    Ok(assemble(
        a.nrows(),
        b.ncols(),
        panels.into_iter().flatten().collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmm_data::generators;
    use spmm_sparse::DenseMatrix;

    fn dense_product<T: Scalar>(a: &CsrMatrix<T>, b: &CsrMatrix<T>) -> DenseMatrix<f64> {
        let ad = a.cast::<f64>().to_dense();
        let bd = b.cast::<f64>().to_dense();
        DenseMatrix::from_fn(a.nrows(), b.ncols(), |i, j| {
            (0..a.ncols()).map(|p| ad.get(i, p) * bd.get(p, j)).sum()
        })
    }

    #[test]
    fn gustavson_matches_dense_reference() {
        let a = generators::uniform_random::<f64>(40, 32, 5, 11);
        let b = generators::uniform_random::<f64>(32, 48, 4, 13);
        let c = spgemm_gustavson_seq(&a, &b).unwrap();
        let want = dense_product(&a, &b);
        let got = c.to_dense();
        let mut max = 0.0f64;
        for i in 0..c.nrows() {
            for j in 0..c.ncols() {
                max = max.max((got.get(i, j) - want.get(i, j)).abs());
            }
        }
        assert!(max < 1e-12, "max deviation {max}");
    }

    #[test]
    fn all_variants_are_bit_identical() {
        for (a, b) in [
            (
                generators::uniform_random::<f64>(60, 50, 6, 1),
                generators::uniform_random::<f64>(50, 40, 5, 2),
            ),
            (
                generators::power_law::<f64>(96, 64, 900, 0.8, 3),
                generators::power_law::<f64>(64, 80, 700, 0.7, 4),
            ),
        ] {
            let seq = spgemm_gustavson_seq(&a, &b).unwrap();
            let par = spgemm_gustavson_par(&a, &b).unwrap();
            assert!(seq.same_structure(&par) && seq.values() == par.values());
            for h in [1usize, 3, 8, 64, 1024] {
                let clu = spgemm_clustered(&a, &b, h).unwrap();
                assert!(
                    seq.same_structure(&clu) && seq.values() == clu.values(),
                    "clustered deviates at panel_height {h}"
                );
            }
        }
    }

    #[test]
    fn structural_zeros_from_cancellation_are_kept() {
        // A = [1 1], B rows sum to zero in column 0: C keeps an explicit 0.
        let a = CsrMatrix::from_parts(1, 2, vec![0, 2], vec![0, 1], vec![1.0f64, 1.0]).unwrap();
        let b = CsrMatrix::from_parts(2, 1, vec![0, 1, 2], vec![0, 0], vec![2.0f64, -2.0]).unwrap();
        let c = spgemm_gustavson_seq(&a, &b).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.values(), &[0.0]);
        let clu = spgemm_clustered(&a, &b, 4).unwrap();
        assert!(c.same_structure(&clu) && c.values() == clu.values());
    }

    #[test]
    fn empty_operands_produce_empty_products() {
        let a = CsrMatrix::<f32>::from_parts(3, 2, vec![0, 0, 0, 0], vec![], vec![]).unwrap();
        let b = generators::uniform_random::<f32>(2, 4, 2, 9);
        let c = spgemm_gustavson_seq(&a, &b).unwrap();
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (3, 4, 0));
        let c = spgemm_clustered(&a, &b, 2).unwrap();
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (3, 4, 0));
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let a = CsrMatrix::<f64>::identity(4);
        let b = CsrMatrix::<f64>::identity(5);
        assert!(spgemm_gustavson_seq(&a, &b).is_err());
        assert!(spgemm_gustavson_par(&a, &b).is_err());
        assert!(spgemm_clustered(&a, &b, 4).is_err());
    }
}
