//! Graph-convolution inference (the paper's motivating GNN workload).
//!
//! A two-layer GCN computes `H' = ReLU(Â · H · W)` per layer; the
//! `Â · H` step is SpMM over the (normalised) adjacency matrix. The
//! adjacency is fixed across layers and inference batches, so the
//! reordering cost is paid once offline — "reordering a graph for graph
//! neural network inference" (§5.4).
//!
//! Run with: `cargo run --release --example gnn_graph_convolution`

use spmm_rr::prelude::*;

/// `out = h · w` for a small square weight matrix (dense × dense).
fn dense_matmul(h: &DenseMatrix<f32>, w: &[Vec<f32>]) -> DenseMatrix<f32> {
    let k = w.len();
    DenseMatrix::from_fn(h.nrows(), k, |i, j| {
        (0..k).map(|d| h.get(i, d) * w[d][j]).sum()
    })
}

fn relu(h: &mut DenseMatrix<f32>) {
    for v in h.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

fn main() {
    // a community-structured social graph whose vertex numbering does
    // not follow the communities (the usual case for crawled graphs)
    // (rows per block == block columns keeps the adjacency square)
    let adj = generators::noisy_shuffled_clusters::<f32>(768, 24, 24, 12, 2, 11);
    let n = adj.nrows();
    let feature_dim = 128;
    println!(
        "graph: {} vertices, {} edges; feature dim {feature_dim}",
        n,
        adj.nnz()
    );

    // offline: reorder + tile the adjacency once
    let engine =
        Engine::prepare(&adj, &EngineConfig::default()).expect("generated matrix is valid CSR");
    println!(
        "offline preprocessing: {:.1} ms (round1 {}, round2 {})",
        engine.preprocessing_time().as_secs_f64() * 1e3,
        engine.plan().round1_applied,
        engine.plan().round2_applied
    );

    // random input features and per-layer weights
    let mut h = generators::random_dense::<f32>(n, feature_dim, 5);
    let weights: Vec<Vec<Vec<f32>>> = (0..2)
        .map(|layer| {
            (0..feature_dim)
                .map(|i| {
                    (0..feature_dim)
                        .map(|j| {
                            // deterministic pseudo-weights
                            let x = (layer * 7919 + i * 131 + j) as f32;
                            ((x * 0.618).sin()) / feature_dim as f32
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    // two GCN layers: H <- ReLU((A · H) · W)
    for (l, w) in weights.iter().enumerate() {
        let agg = engine.spmm(&h).expect("adjacency is square");
        h = dense_matmul(&agg, w);
        relu(&mut h);
        println!(
            "layer {l}: aggregated + transformed, ‖H‖_F = {:.3}",
            h.frobenius_norm()
        );
    }

    // sanity: the engine's SpMM equals the naive reference
    let probe = generators::random_dense::<f32>(n, feature_dim, 99);
    let a = engine.spmm(&probe).unwrap();
    let b = spmm_rowwise_seq(&adj, &probe).unwrap();
    println!("\nmax deviation vs reference: {:.2e}", a.max_abs_diff(&b));

    // what the simulated P100 says about per-layer inference cost
    let device = DeviceConfig::p100();
    let nr = simulate_spmm_aspt(
        &AsptMatrix::build(&adj, &EngineConfig::default().reorder.aspt),
        None,
        feature_dim,
        &device,
    );
    let rr = engine.simulate_spmm(feature_dim, &device);
    println!(
        "simulated per-layer SpMM: ASpT-NR {:.0} us, ASpT-RR {:.0} us ({:.2}x)",
        nr.time_s * 1e6,
        rr.time_s * 1e6,
        nr.time_s / rr.time_s
    );
    if rr.time_s < nr.time_s {
        println!(
            "preprocessing amortises after {:.0} inference layers",
            engine.preprocessing_time().as_secs_f64() / (nr.time_s - rr.time_s)
        );
    } else {
        println!("reordering gave no win here; the trial-and-error policy would discard it");
    }
}
