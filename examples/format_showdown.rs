//! Format showdown: CSR row-wise vs ELLPACK vs SELL-P vs SELL-C-σ vs
//! ASpT-RR on two structurally opposite matrices — the paper's §6
//! argument that format-based approaches "assume the nonzeros are
//! somewhat clustered".
//!
//! Run with: `cargo run --release --example format_showdown`

use spmm_rr::gpu_sim::kernels::{spmm_rowwise_blocks, DEFAULT_ROWS_PER_BLOCK};
use spmm_rr::gpu_sim::run_blocks;
use spmm_rr::prelude::*;

fn report_line(name: &str, pad: f64, us: f64) {
    println!("  {name:<12} padding {pad:>7.2}x   simulated {us:>9.1} us");
}

fn showdown(label: &str, m: &CsrMatrix<f32>, k: usize, device: &DeviceConfig) {
    println!(
        "\n{label}: {} x {}, {} nonzeros (K = {k})",
        m.nrows(),
        m.ncols(),
        m.nnz()
    );
    let csr = run_blocks(
        &spmm_rowwise_blocks(m, k, None, DEFAULT_ROWS_PER_BLOCK),
        k,
        4,
        device,
    );
    report_line("CSR", 1.0, csr.time_s * 1e6);

    let ell = EllMatrix::from_csr(m);
    report_line(
        "ELL",
        ell.padding_factor(),
        ell.simulate_spmm(k, device).time_s * 1e6,
    );

    let sell = SellPMatrix::from_csr(m, 32, 0);
    report_line(
        "SELL-P",
        sell.padding_factor(),
        sell.simulate_spmm(k, device).time_s * 1e6,
    );

    let sigma = SellPMatrix::from_csr(m, 32, 256);
    report_line(
        "SELL-C-sigma",
        sigma.padding_factor(),
        sigma.simulate_spmm(k, device).time_s * 1e6,
    );

    let engine =
        Engine::prepare(m, &EngineConfig::default()).expect("generated matrix is valid CSR");
    report_line("ASpT-RR", 1.0, engine.simulate_spmm(k, device).time_s * 1e6);

    // numerics: all formats produce the same answer
    let x = generators::random_dense::<f32>(m.ncols(), 8, 3);
    let reference = spmm_rowwise_seq(m, &x).unwrap();
    assert!(reference.max_abs_diff(&ell.spmm_par(&x).unwrap()) < 1e-3);
    assert!(reference.max_abs_diff(&sigma.spmm_par(&x).unwrap()) < 1e-3);
    assert!(reference.max_abs_diff(&engine.spmm(&x).unwrap()) < 1e-3);
    println!("  (all formats verified numerically identical)");
}

fn main() {
    let device = DeviceConfig::p100();
    let k = 256;

    // power law: ELL's worst case — a few hub rows pad everything
    let powerlaw = generators::power_law::<f32>(16384, 16384, 256 * 1024, 0.85, 7);
    showdown("power-law graph", &powerlaw, k, &device);

    // shuffled clusters: recoverable structure only row reordering sees
    let shuffled = generators::shuffled_block_diagonal::<f32>(512, 16, 48, 16, 9);
    showdown("shuffled clusters", &shuffled, k, &device);
}
