//! Quickstart: prepare a matrix, run SpMM/SDDMM, inspect what the
//! pipeline decided and what the simulated P100 thinks of it.
//!
//! Run with: `cargo run --release --example quickstart`

use spmm_rr::prelude::*;

fn main() {
    // A matrix with hidden cluster structure destroyed by a row
    // shuffle — the case the paper's row reordering is built for.
    let s = generators::shuffled_block_diagonal::<f32>(512, 16, 48, 16, 42);
    let k = 256;
    println!(
        "matrix: {} x {}, {} nonzeros, K = {k}",
        s.nrows(),
        s.ncols(),
        s.nnz()
    );

    // ---- prepare: plan reordering (Fig 5), tile ----------------------
    let engine =
        Engine::prepare(&s, &EngineConfig::default()).expect("generated matrix is valid CSR");
    let plan = engine.plan();
    println!("\npipeline decisions:");
    println!(
        "  round 1 (reorder rows):      {} (dense ratio {:.3} -> {:.3})",
        if plan.round1_applied {
            "applied"
        } else {
            "skipped"
        },
        plan.dense_ratio_before,
        plan.dense_ratio_after
    );
    println!(
        "  round 2 (order remainder):   {} (avg similarity {:.3} -> {:.3})",
        if plan.round2_applied {
            "applied"
        } else {
            "skipped"
        },
        plan.avgsim_before,
        plan.avgsim_after
    );
    println!(
        "  preprocessing took {:.1} ms",
        engine.preprocessing_time().as_secs_f64() * 1e3
    );

    // ---- numerics: results come back in the original row order -------
    let x = generators::random_dense::<f32>(s.ncols(), k, 7);
    let y = engine.spmm(&x).expect("shapes match");
    let reference = spmm_rowwise_seq(&s, &x).expect("shapes match");
    println!(
        "\nSpMM max deviation vs naive reference: {:.2e}",
        reference.max_abs_diff(&y)
    );

    let yd = generators::random_dense::<f32>(s.nrows(), k, 9);
    let o = engine.sddmm(&x, &yd).expect("shapes match");
    println!("SDDMM produced {} output values (one per nonzero)", o.len());

    // ---- simulated P100: the paper's comparison ----------------------
    let device = DeviceConfig::p100();
    let trial = choose_variant(
        &s,
        Kernel::Spmm,
        k,
        &device,
        &EngineConfig::default().reorder,
    )
    .expect("generated matrix is valid CSR");
    println!("\nsimulated P100 SpMM ({k} columns):");
    if let Some(c) = &trial.cusparse_like {
        println!(
            "  cuSPARSE-like: {:>8.2} GFLOP/s  ({:.0} MiB DRAM)",
            c.gflops,
            c.traffic.dram_bytes as f64 / (1 << 20) as f64
        );
    }
    println!(
        "  ASpT-NR:       {:>8.2} GFLOP/s  ({:.0} MiB DRAM)",
        trial.aspt_nr.gflops,
        trial.aspt_nr.traffic.dram_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "  ASpT-RR:       {:>8.2} GFLOP/s  ({:.0} MiB DRAM)",
        trial.aspt_rr.gflops,
        trial.aspt_rr.traffic.dram_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "  trial-and-error picks {:?} (RR speedup vs best other: {:.2}x)",
        trial.chosen,
        trial.rr_speedup_vs_best_other()
    );
}
