//! Collaborative filtering by gradient descent — the paper's
//! motivating SDDMM workload (§1: "the computation of the gradient in
//! each iteration involves an SDDMM").
//!
//! Matrix factorisation R ≈ U·Vᵀ on a bipartite ratings matrix:
//!
//! * predictions on observed entries: `P = (U · Vᵀ) ⊙ mask` — an SDDMM
//!   over the rating mask;
//! * factor updates: `U += η · E · V` and `V += η · Eᵀ · U` — SpMMs with
//!   the sparse error matrix `E`, whose *structure* is fixed across
//!   epochs (only its values change).
//!
//! The fixed structure is exactly why the paper's preprocessing
//! amortises: reorder/tile once, update values every epoch.
//!
//! Run with: `cargo run --release --example collaborative_filtering`

use spmm_rr::prelude::*;

fn main() {
    let (nusers, nitems, k) = (2048, 1024, 32);
    let ratings = generators::bipartite_cf::<f32>(nusers, nitems, 16, 0.8, 3);
    println!(
        "ratings: {} users x {} items, {} observed entries",
        nusers,
        nitems,
        ratings.nnz()
    );

    // the mask matrix (same structure, unit values) drives the SDDMM
    let mut mask = ratings.clone();
    mask.values_mut().fill(1.0);

    // prepare engines ONCE; structure never changes across epochs
    let cfg = EngineConfig::default();
    let sddmm_engine = Engine::prepare(&mask, &cfg).expect("generated matrix is valid CSR");
    println!(
        "preprocessing: {:.1} ms (reordering {})",
        sddmm_engine.preprocessing_time().as_secs_f64() * 1e3,
        if sddmm_engine.plan().needs_reordering() {
            "applied"
        } else {
            "skipped"
        }
    );

    let mut u = generators::random_dense::<f32>(nusers, k, 1);
    let mut v = generators::random_dense::<f32>(nitems, k, 2);
    // scale factors down so the first predictions are small
    for val in u.data_mut() {
        *val *= 0.1;
    }
    for val in v.data_mut() {
        *val *= 0.1;
    }

    let lr = 0.05f32 / k as f32;
    // the error matrix E shares R's structure: prepare its engine once
    // and refresh only the values each epoch (Engine::update_values)
    let mut err_engine = Engine::prepare(&ratings, &cfg).expect("generated matrix is valid CSR");

    let mut last_rmse = f32::INFINITY;
    for epoch in 0..8 {
        // P = (U · Vᵀ) ⊙ mask  — predictions at observed entries only
        let pred = sddmm_engine.sddmm(&v, &u).expect("shapes match");

        // E = R - P on the observed entries (same structure as R)
        let mut err = ratings.clone();
        let mut sq = 0.0f64;
        for (e, (&r, &p)) in err
            .values_mut()
            .iter_mut()
            .zip(ratings.values().iter().zip(&pred))
        {
            *e = r - p;
            sq += (*e as f64) * (*e as f64);
        }
        let rmse = (sq / ratings.nnz() as f64).sqrt() as f32;
        println!("epoch {epoch}: rmse = {rmse:.4}");
        assert!(
            rmse < last_rmse || epoch > 5,
            "gradient descent must make progress"
        );
        last_rmse = rmse;

        // U += lr * E · V ; V += lr * Eᵀ · U (structure fixed, values new)
        err_engine.update_values(err.values());
        let grad_u = err_engine.spmm(&v).expect("shapes match");
        let err_t = err.transpose();
        let grad_v = spmm_rowwise_par(&err_t, &u).expect("shapes match");
        for (uv, g) in u.data_mut().iter_mut().zip(grad_u.data()) {
            *uv += lr * g;
        }
        for (vv, g) in v.data_mut().iter_mut().zip(grad_v.data()) {
            *vv += lr * g;
        }
    }

    // simulated amortisation story (§5.4): preprocessing vs per-epoch cost
    let device = DeviceConfig::p100();
    let sddmm_cost = sddmm_engine.simulate_sddmm(k, &device);
    println!(
        "\nsimulated P100 SDDMM per epoch: {:.0} us; preprocessing {:.1} ms \
         amortises over {:.0} epochs",
        sddmm_cost.time_s * 1e6,
        sddmm_engine.preprocessing_time().as_secs_f64() * 1e3,
        sddmm_engine.preprocessing_time().as_secs_f64() / sddmm_cost.time_s
    );
}
