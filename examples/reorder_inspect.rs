//! Visual walk-through of the reordering on the paper's own example
//! (Fig 1 → Fig 4) and on a larger shuffled matrix: prints spy plots
//! and the pipeline's indicators.
//!
//! Run with: `cargo run --release --example reorder_inspect`

use spmm_rr::prelude::*;

/// ASCII spy plot of a small matrix.
fn spy<T: Scalar>(m: &CsrMatrix<T>) -> String {
    let mut out = String::new();
    for i in 0..m.nrows() {
        let cols = m.row_cols(i);
        let mut line = vec!['.'; m.ncols()];
        for &c in cols {
            line[c as usize] = '#';
        }
        out.push_str(&line.iter().collect::<String>());
        out.push('\n');
    }
    out
}

fn fig1() -> CsrMatrix<f64> {
    let rows: &[&[u32]] = &[&[0, 4], &[1, 3, 5], &[2, 4], &[1, 2], &[0, 3, 4], &[5]];
    let mut coo = CooMatrix::new(6, 6).unwrap();
    for (r, cols) in rows.iter().enumerate() {
        for &c in *cols {
            coo.push(r as u32, c, 1.0).unwrap();
        }
    }
    CsrMatrix::from_coo(&coo)
}

fn main() {
    // ---- the paper's running example ---------------------------------
    let m = fig1();
    println!("paper Fig 1a matrix:\n{}", spy(&m));

    let paper_aspt = AsptConfig::paper_figure();
    let before = AsptMatrix::build(&m, &paper_aspt);
    println!(
        "ASpT on the original order: {} of {} nonzeros in dense tiles",
        before.nnz_dense(),
        before.nnz()
    );

    // the exact clustering trace of Fig 6: the paper supposes LSH
    // returned the pairs (0,4) with J=2/3 and (2,4) with J=1/4
    let pairs = vec![
        spmm_rr::lsh::CandidatePair {
            i: 0,
            j: 4,
            similarity: 2.0 / 3.0,
        },
        spmm_rr::lsh::CandidatePair {
            i: 2,
            j: 4,
            similarity: 0.25,
        },
    ];
    let (perm, stats) = spmm_rr::reorder::cluster_rows(&m, &pairs, 256);
    println!(
        "clustering (paper's Fig 6 candidates): {} merges, {} re-enqueued -> order {:?} (paper: [0, 2, 4, 1, 3, 5])",
        stats.merges,
        stats.requeued,
        perm.order()
    );

    let reordered = m.permute_rows(&perm);
    println!("\nreordered matrix:\n{}", spy(&reordered));
    let after = AsptMatrix::build(&reordered, &paper_aspt);
    println!(
        "ASpT after reordering: {} of {} nonzeros in dense tiles (paper: 9)",
        after.nnz_dense(),
        after.nnz()
    );

    // ---- a larger recoverable matrix ----------------------------------
    let big = generators::shuffled_block_diagonal::<f32>(512, 16, 48, 16, 21);
    let plan = plan_reordering(&big, &ReorderConfig::default());
    let metrics = ReorderMetrics::from_plan(&plan);
    println!(
        "\nshuffled clusters ({} rows): ΔDenseRatio = {:+.3}, ΔAvgSim = {:+.3}",
        big.nrows(),
        metrics.delta_dense_ratio,
        metrics.delta_avgsim
    );
    println!(
        "round 1 {}, round 2 {}; quadrant {:?} (paper Fig 9: (+,+) predicts speedup)",
        plan.round1_applied,
        plan.round2_applied,
        metrics.quadrant()
    );

    // vertex reordering does NOT help (the METIS comparison)
    let sym = spmm_rr::reorder::baselines::rcm(&generators::laplacian_2d::<f32>(32, 32));
    println!(
        "\nvertex reordering (RCM over a 32x32 grid) produced a permutation of {} vertices —\n\
         see `experiments fig9` for the simulated slowdown it causes for SpMM",
        sym.len()
    );
}
